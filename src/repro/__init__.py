"""repro — a full reproduction of *Query Flocks: A Generalization of
Association-Rule Mining* (Tsur, Ullman, Abiteboul, Clifton, Motwani,
Nestorov, Rosenthal; SIGMOD 1998).

Quickstart::

    from repro import parse_flock, database_from_dict, evaluate_flock, optimize, execute_plan

    flock = parse_flock('''
        QUERY:
        answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2

        FILTER:
        COUNT(answer.B) >= 20
    ''')
    result = evaluate_flock(db, flock)          # the naive/SQL way
    plan = optimize(db, flock)                  # a-priori rewrite
    fast = execute_plan(db, flock, plan)        # same answer, faster
    assert fast.relation == result

Subpackages:

* :mod:`repro.analysis` — static verification: structured diagnostics,
  plan legality certificates (safety reports + containment witnesses),
  and the physical-IR schema checker;
* :mod:`repro.datalog` — the flock query language (terms, extended CQs,
  unions, parser, safety, containment, safe-subquery enumeration);
* :mod:`repro.relational` — the in-memory relational engine;
* :mod:`repro.flocks` — flocks, filters, plans, optimizers, executors,
  SQL translation, the classic a-priori baseline;
* :mod:`repro.recovery` — fault tolerance: retry policies with
  guard-clamped backoff, and step-level checkpoint–resume for
  long-running mining runs;
* :mod:`repro.session` — interactive mining sessions with a
  containment-aware result cache (re-ask at a stricter threshold and
  the answer comes from the cache, no joins);
* :mod:`repro.serve` — mining-as-a-service: an HTTP/JSON daemon
  multiplexing many concurrent clients over one shared session/cache,
  with per-tenant admission control and Prometheus metrics;
* :mod:`repro.workloads` — synthetic data generators for the paper's
  example domains.
"""

from .errors import (
    BudgetExceededError,
    EvaluationError,
    ExecutionAborted,
    ExecutionCancelled,
    FilterError,
    HungWorkerError,
    ParseError,
    PlanError,
    ReproError,
    ResumeError,
    SafetyError,
    SchemaError,
)
from .guard import (
    CancellationToken,
    ExecutionGuard,
    ResourceBudget,
)
from .recovery import (
    CheckpointStore,
    RetryPolicy,
    RetrySupervisor,
    TransientFault,
)
from .analysis import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    plan_verification,
    set_plan_verification,
)
from .datalog import (
    ConjunctiveQuery,
    Parameter,
    UnionQuery,
    Variable,
    atom,
    comparison,
    negated,
    parse_query,
    parse_rule,
    rule,
)
from .relational import (
    Database,
    Relation,
    database_from_dict,
    load_database,
    save_database,
)
from .flocks import (
    FilterCondition,
    FilterStep,
    FlockOptimizer,
    FlockResult,
    QueryFlock,
    QueryPlan,
    apriori_itemsets,
    evaluate_flock,
    evaluate_flock_bruteforce,
    evaluate_flock_dynamic,
    execute_plan,
    flock_to_sql,
    itemset_flock,
    itemset_plan,
    mine,
    optimize,
    parse_filter,
    parse_flock,
    plan_to_sql,
    support_filter,
    validate_plan,
)
from .session import (
    MiningSession,
    ResultCache,
    SessionStats,
    with_support_threshold,
)
from .serve import (
    MiningClient,
    MiningService,
    ServeError,
    ServerConfig,
    TenantPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "BudgetExceededError",
    "CancellationToken",
    "CheckpointStore",
    "ConjunctiveQuery",
    "Database",
    "Diagnostic",
    "DiagnosticReport",
    "EvaluationError",
    "ExecutionAborted",
    "ExecutionCancelled",
    "ExecutionGuard",
    "FilterCondition",
    "FilterError",
    "FilterStep",
    "FlockOptimizer",
    "FlockResult",
    "HungWorkerError",
    "MiningClient",
    "MiningService",
    "MiningSession",
    "Parameter",
    "ParseError",
    "PlanError",
    "QueryFlock",
    "QueryPlan",
    "Relation",
    "ReproError",
    "ResourceBudget",
    "ResultCache",
    "ResumeError",
    "RetryPolicy",
    "RetrySupervisor",
    "SafetyError",
    "SchemaError",
    "ServeError",
    "ServerConfig",
    "SessionStats",
    "Severity",
    "TenantPolicy",
    "TransientFault",
    "UnionQuery",
    "Variable",
    "apriori_itemsets",
    "atom",
    "comparison",
    "database_from_dict",
    "evaluate_flock",
    "evaluate_flock_bruteforce",
    "evaluate_flock_dynamic",
    "execute_plan",
    "flock_to_sql",
    "itemset_flock",
    "itemset_plan",
    "load_database",
    "mine",
    "negated",
    "optimize",
    "parse_filter",
    "parse_flock",
    "parse_query",
    "parse_rule",
    "plan_to_sql",
    "plan_verification",
    "rule",
    "save_database",
    "set_plan_verification",
    "support_filter",
    "validate_plan",
    "with_support_threshold",
]
