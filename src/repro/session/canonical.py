"""Canonical forms and reuse tests for (extended) conjunctive queries.

The result cache (:mod:`repro.session.cache`) needs two query-level
operations, both grounded in the Section 3.1 containment theory of
:mod:`repro.datalog.containment`:

* **canonical keys** — alpha-equivalent queries (equal up to a bijective
  renaming of their variables and a reordering of their subgoals) must
  share a cache key, so a re-issued query finds the result computed for
  a differently-spelled twin.  :func:`canonicalize` renames variables to
  ``_c0, _c1, ...`` over a deterministically ordered body;
  :func:`canonical_key` renders that form as a string.  Parameters and
  constants are part of the key — a flock is a query *about its
  parameters*, so ``$s`` and ``$m`` are as distinguishing as relation
  names (the containment module treats them as distinguished variables
  for the same reason).

* **reuse tests** — :func:`alpha_equivalent` confirms that a cache-key
  collision really is the same query (the key is canonical for
  alpha-equivalence whenever the tie-break search below completes, and a
  conservative bucket label otherwise), and :func:`serves_as_bound`
  decides "is every answer of ``contained`` also produced by
  ``container``?" — the soundness condition for serving a cached result
  as an a-priori pruning upper bound.  The strongest applicable test is
  chosen per query class: Chandra–Merlin homomorphisms for pure CQs,
  Klug's criterion for CQs with arithmetic, and the paper's
  subgoal-subset restriction once negation appears.

Canonicalization caveat: choosing the lexicographically least body
ordering over all variable renamings is graph-isomorphism-hard in
general, so ties between structurally identical subgoals are broken by
bounded permutation search (:data:`MAX_TIE_PERMUTATIONS`).  Realistic
flock queries (a handful of subgoals) are far below the bound; if a
pathological query exceeds it, the key degrades to a deterministic but
not-fully-canonical label — lookups then miss some alpha-variants but
never conflate distinct queries, because every key hit is re-verified
with :func:`alpha_equivalent`.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Iterator, Optional

from ..datalog.atoms import Comparison, ComparisonOp, RelationalAtom, Subgoal
from ..datalog.containment import (
    contains,
    contains_extended,
    is_subquery_bound,
)
from ..datalog.query import ConjunctiveQuery, FlockQuery, as_union
from ..datalog.terms import Constant, Parameter, Term, Variable

#: Cap on the tie-break permutations tried while canonicalizing one body.
MAX_TIE_PERMUTATIONS = 720


def _oriented(sg: Subgoal) -> Subgoal:
    """Normalize comparison orientation: ``a > b`` becomes ``b < a`` so
    the two spellings canonicalize identically."""
    if isinstance(sg, Comparison) and sg.op in (ComparisonOp.GT, ComparisonOp.GE):
        return Comparison(sg.right, sg.op.flipped(), sg.left)
    return sg


def _term_signature(term: Term, local: dict[Variable, int]) -> tuple:
    """A variable-name-independent signature of one term.

    Variables are abstracted to their first-occurrence index *within the
    subgoal* (``local``), so ``p(X, X)`` and ``p(X, Y)`` stay distinct
    while ``p(X, Y)`` and ``p(U, V)`` coincide.
    """
    if isinstance(term, Constant):
        return ("c", repr(term.value))
    if isinstance(term, Parameter):
        return ("p", term.name)
    if term not in local:
        local[term] = len(local)
    return ("v", local[term])


def _subgoal_signature(sg: Subgoal) -> tuple:
    sg = _oriented(sg)
    local: dict[Variable, int] = {}
    if isinstance(sg, RelationalAtom):
        return (
            "atom",
            sg.predicate,
            sg.negated,
            sg.arity,
            tuple(_term_signature(t, local) for t in sg.terms),
        )
    return (
        "cmp",
        sg.op.value,
        _term_signature(sg.left, local),
        _term_signature(sg.right, local),
    )


def _rename_terms(terms: Iterable[Term], names: dict[Variable, Variable]) -> tuple:
    renamed = []
    for term in terms:
        if isinstance(term, Variable):
            if term not in names:
                names[term] = Variable(f"_c{len(names)}")
            renamed.append(names[term])
        else:
            renamed.append(term)
    return tuple(renamed)


def _rename_query(
    query: ConjunctiveQuery, body: tuple[Subgoal, ...]
) -> ConjunctiveQuery:
    """Rename variables to ``_c0, _c1, ...`` in head-then-body first
    occurrence order over the given body ordering."""
    names: dict[Variable, Variable] = {}
    head = _rename_terms(query.head_terms, names)
    new_body: list[Subgoal] = []
    for sg in body:
        sg = _oriented(sg)
        if isinstance(sg, RelationalAtom):
            new_body.append(
                RelationalAtom(sg.predicate, _rename_terms(sg.terms, names), sg.negated)
            )
        else:
            left, right = _rename_terms((sg.left, sg.right), names)
            new_body.append(Comparison(left, sg.op, right))
    return ConjunctiveQuery(query.head_name, head, tuple(new_body))


def _tie_groups(body: tuple[Subgoal, ...]) -> list[list[Subgoal]]:
    """The body sorted by name-independent signature, as runs of ties."""
    decorated = sorted(
        ((_subgoal_signature(sg), sg) for sg in body), key=lambda pair: pair[0]
    )
    groups: list[list[Subgoal]] = []
    previous = None
    for signature, sg in decorated:
        if signature != previous:
            groups.append([])
            previous = signature
        groups[-1].append(sg)
    return groups


def canonicalize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The canonical alpha-variant of an extended conjunctive query.

    Subgoals are ordered by a variable-name-independent signature;
    within each run of structurally identical subgoals every permutation
    (up to :data:`MAX_TIE_PERMUTATIONS` combinations in total) is tried,
    and the ordering whose renamed rendering is lexicographically least
    wins.  The result is idempotent — ``canonicalize(canonicalize(q))``
    equals ``canonicalize(q)`` — and equal for alpha-equivalent inputs
    whenever the permutation search completes.
    """
    groups = _tie_groups(query.body)
    total = 1
    for group in groups:
        for k in range(2, len(group) + 1):
            total *= k
        if total > MAX_TIE_PERMUTATIONS:
            break

    if total > MAX_TIE_PERMUTATIONS:
        # Degraded mode: deterministic but possibly non-canonical order.
        flat = tuple(sg for group in groups for sg in group)
        return _rename_query(query, flat)

    best: Optional[tuple[str, ConjunctiveQuery]] = None
    for ordering in _orderings(groups):
        candidate = _rename_query(query, ordering)
        rendered = str(candidate)
        if best is None or rendered < best[0]:
            best = (rendered, candidate)
    assert best is not None  # at least one ordering always exists
    return best[1]


def _orderings(
    groups: list[list[Subgoal]],
) -> "Iterator[tuple[Subgoal, ...]]":
    """Every body ordering that permutes only within tie groups."""

    def rec(
        index: int, prefix: tuple[Subgoal, ...]
    ) -> "Iterator[tuple[Subgoal, ...]]":
        if index == len(groups):
            yield prefix
            return
        for perm in permutations(groups[index]):
            yield from rec(index + 1, prefix + perm)

    yield from rec(0, ())


def canonical_key(query: FlockQuery) -> str:
    """A string key shared by alpha-equivalent queries.

    For a union, branches are canonicalized independently and sorted, so
    branch order does not matter either.
    """
    union = as_union(query)
    branch_keys = sorted(str(canonicalize(rule)) for rule in union.rules)
    return "\nUNION\n".join(branch_keys)


# ----------------------------------------------------------------------
# Reuse tests
# ----------------------------------------------------------------------


def alpha_equivalent(q1: FlockQuery, q2: FlockQuery) -> bool:
    """Exact test: equal up to bijective variable renaming and subgoal
    (and union-branch) reordering.  Handles the full extended language —
    negation and arithmetic subgoals must match structurally.
    """
    u1, u2 = as_union(q1), as_union(q2)
    if len(u1.rules) != len(u2.rules):
        return False
    if len(u1.rules) == 1:
        return _alpha_equivalent_rules(u1.rules[0], u2.rules[0])
    # Branch-order-insensitive matching via canonical branch keys.
    k1 = sorted(str(canonicalize(r)) for r in u1.rules)
    k2 = sorted(str(canonicalize(r)) for r in u2.rules)
    return k1 == k2


def _alpha_equivalent_rules(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    if q1.head_name != q2.head_name or len(q1.head_terms) != len(q2.head_terms):
        return False
    if len(q1.body) != len(q2.body):
        return False
    return str(canonicalize(q1)) == str(canonicalize(q2)) or _match_bijective(q1, q2)


def _match_bijective(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Backtracking search for a variable bijection mapping q1 onto q2.

    Safety net for queries whose canonicalization degraded (tie groups
    over the permutation cap); exact but potentially exponential, so it
    runs only after the cheap canonical comparison failed.
    """
    body2 = [_oriented(sg) for sg in q2.body]

    def extend(
        mapping: dict[Variable, Variable],
        used: set[Variable],
        src: Term,
        dst: Term,
    ) -> Optional[tuple[dict, set]]:
        if isinstance(src, Variable) and isinstance(dst, Variable):
            bound = mapping.get(src)
            if bound is not None:
                return (mapping, used) if bound == dst else None
            if dst in used:
                return None
            mapping = dict(mapping)
            used = set(used)
            mapping[src] = dst
            used.add(dst)
            return (mapping, used)
        return (mapping, used) if src == dst else None

    def match_subgoal(
        sg1: Subgoal,
        sg2: Subgoal,
        mapping: "dict[Term, Term]",
        used: "set[Term]",
    ) -> "tuple[dict[Term, Term], set[Term]] | None":
        pairs: list[tuple[Term, Term]]
        if isinstance(sg1, RelationalAtom) and isinstance(sg2, RelationalAtom):
            if (
                sg1.predicate != sg2.predicate
                or sg1.negated != sg2.negated
                or sg1.arity != sg2.arity
            ):
                return None
            pairs = list(zip(sg1.terms, sg2.terms))
        elif isinstance(sg1, Comparison) and isinstance(sg2, Comparison):
            if sg1.op != sg2.op:
                return None
            pairs = [(sg1.left, sg2.left), (sg1.right, sg2.right)]
        else:
            return None
        state = (mapping, used)
        for src, dst in pairs:
            state = extend(state[0], state[1], src, dst)
            if state is None:
                return None
        return state

    def search(
        index: int,
        remaining: list[Subgoal],
        mapping: "dict[Term, Term]",
        used: "set[Term]",
    ) -> bool:
        if index == len(q1.body):
            return True
        sg1 = _oriented(q1.body[index])
        for i, sg2 in enumerate(remaining):
            state = match_subgoal(sg1, sg2, mapping, used)
            if state is None:
                continue
            if search(index + 1, remaining[:i] + remaining[i + 1:], *state):
                return True
        return False

    seed: Optional[tuple[dict, set]] = ({}, set())
    for src, dst in zip(q1.head_terms, q2.head_terms):
        assert seed is not None
        seed = extend(seed[0], seed[1], src, dst)
        if seed is None:
            return False
    return search(0, body2, *seed)


def _has_negation(query: ConjunctiveQuery) -> bool:
    return any(
        isinstance(sg, RelationalAtom) and sg.negated for sg in query.body
    )


def _is_pure(query: ConjunctiveQuery) -> bool:
    return all(
        isinstance(sg, RelationalAtom) and not sg.negated for sg in query.body
    )


def serves_as_bound(container: FlockQuery, contained: FlockQuery) -> bool:
    """Sound test that ``container``'s answer upper-bounds ``contained``'s.

    Per parameter assignment, every answer tuple of ``contained`` is an
    answer tuple of ``container`` — so a monotone filter failing on
    ``container``'s answer fails on ``contained``'s, and ``container``'s
    cached survivor set may be joined in as an a-priori pruning bound
    (Section 3.1's Optimization Principle, applied across queries
    instead of within one).

    Dispatch (strongest sound test first):

    * both pure CQs → Chandra–Merlin :func:`contains` (exact);
    * arithmetic but no negation → Klug's :func:`contains_extended`
      (sound, complete under a total order);
    * otherwise → the paper's subgoal-subset criterion
      :func:`is_subquery_bound` (sound).
    """
    u1, u2 = as_union(container), as_union(contained)
    if len(u1.rules) != 1 or len(u2.rules) != 1:
        # Union bounds reduce to per-branch bounds: every branch of the
        # contained union must be bounded by some branch of the container.
        return all(
            any(serves_as_bound(c_rule, d_rule) for c_rule in u1.rules)
            for d_rule in u2.rules
        )
    c_rule, d_rule = u1.rules[0], u2.rules[0]
    if alpha_equivalent(c_rule, d_rule):
        return True
    if _is_pure(c_rule) and _is_pure(d_rule):
        return contains(c_rule, d_rule)
    if not _has_negation(c_rule) and not _has_negation(d_rule):
        try:
            return contains_extended(c_rule, d_rule)
        except ValueError:  # pragma: no cover - guarded by _has_negation
            pass
    return is_subquery_bound(c_rule, d_rule)
