"""The containment-aware result cache.

A :class:`ResultCache` stores materialized flock/subquery results —
survivor sets of parameter assignments, optionally with their aggregate
values — tagged with three things that make reuse *sound*:

1. **the canonical query key** (:mod:`repro.session.canonical`), so
   alpha-equivalent queries share entries, every key hit re-verified
   with the exact :func:`~repro.session.canonical.alpha_equivalent`;
2. **the filter it was computed under** — by Section 5 monotonicity a
   result computed at threshold *t* is a superset of the result at any
   stricter threshold, so an ``"aggregates"`` entry (survivors plus
   their per-conjunct aggregate values) serves any request whose filter
   :func:`~repro.flocks.filters.filter_implies` the stored one by pure
   re-filtering; a cached query that *contains* the requested one
   (:func:`~repro.session.canonical.serves_as_bound`) instead serves as
   an a-priori pruning upper bound for the FILTER-plan machinery;
3. **the base-relation versions read** (:mod:`repro.relational.catalog`
   counters), so invalidation is exact: mutating relation ``R`` drops
   precisely the entries derived from ``R`` and no others.

Two entry kinds:

* ``"aggregates"`` — parameter columns plus ``_agg{i}`` per filter
  conjunct, only for assignments that survived.  Serves *exact* answers
  at implied (stricter-or-equal) thresholds.  This is the kind
  :func:`~repro.flocks.mining.mine` publishes for the full flock.
* ``"survivors"`` — parameter columns only.  Too little information to
  re-filter, but still a sound *upper bound* for any contained query
  under an implied filter — exactly what a FILTER step's ``ok``
  relation needs, since later plan steps re-filter anyway.  This is
  what the optimizer's probes and the dynamic evaluator's intermediate
  materializations publish.

Eviction is size-bounded LRU: total cached rows and entry count are
capped, the least-recently-*used* entry goes first, and a single result
larger than the row budget is never admitted.

The cache is **thread-safe**: the serve layer shares one process-wide
cache across a pool of worker threads, so every path that reads or
mutates the LRU order (lookups touch it too — ``move_to_end``) runs
under one re-entrant lock.  Entries themselves are immutable relations,
so a served entry needs no lock to use.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Optional

from ..concurrency import requires
from ..datalog.query import FlockQuery, as_union
from ..flocks.filters import (
    AnyFilter,
    filter_implies,
    filter_signature,
    refilter_aggregates,
)
from ..relational.relation import Relation
from .canonical import alpha_equivalent, canonical_key, serves_as_bound

#: Entry kinds (see module docstring).
KIND_AGGREGATES = "aggregates"
KIND_SURVIVORS = "survivors"


def query_relations(query: FlockQuery) -> set[str]:
    """The base relations a query reads — the version-tracking scope."""
    names: set[str] = set()
    for rule in as_union(query).rules:
        names |= rule.predicates()
    return names


@dataclass
class CachedResult:
    """One materialized result with its reuse metadata."""

    key: str
    query: FlockQuery
    filter: AnyFilter
    kind: str
    relation: Relation
    versions: dict[str, int]
    source_rows: int
    param_columns: tuple[str, ...]

    def is_current(self, version_of: Callable[[str], int]) -> bool:
        """Whether every base relation still has its recorded version.
        ``version_of(name)`` is typically ``db.version``."""
        return all(version_of(n) == v for n, v in self.versions.items())

    def survivor_relation(self, name: str) -> Relation:
        """The survivors projected to the parameter columns."""
        if self.kind == KIND_SURVIVORS:
            return self.relation.with_name(name)
        return self.relation.project(list(self.param_columns), name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CachedResult({self.kind}, rows={len(self.relation)}, "
            f"filter={self.filter}, query={self.query})"
        )


@dataclass
class CacheStats:
    """Counters for one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    bound_hits: int = 0
    invalidated: int = 0
    evicted: int = 0
    stored: int = 0
    rejected_oversize: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


class ResultCache:
    """Size-bounded LRU cache of materialized query results.

    Args:
        max_rows: cap on the *total* tuples across all entries (None =
            unbounded).  A single relation exceeding the cap is never
            admitted.
        max_entries: cap on the number of entries (None = unbounded).
    """

    #: Lock discipline, proven by ``repro.analysis.conlint``: the LRU
    #: map and the stats counters are only touched under ``_lock``.
    GUARDED = {"_entries": "_lock", "stats": "_lock"}

    def __init__(
        self,
        max_rows: Optional[int] = 100_000,
        max_entries: Optional[int] = 64,
    ) -> None:
        self.max_rows = max_rows
        self.max_entries = max_entries
        self.stats = CacheStats()
        # Insertion/use order is LRU order: oldest first.
        self._entries: "OrderedDict[tuple, CachedResult]" = OrderedDict()
        # One lock for every read *and* write: lookups mutate LRU order
        # and the stats counters, so there is no lock-free fast path.
        # Re-entrant because put() -> _evict() nests.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def total_rows(self) -> int:
        with self._lock:
            return sum(len(e.relation) for e in self._entries.values())

    def total_bytes(self) -> int:
        """Footprint of the cached relations in the encoded flat-column
        layout (8 bytes per column slot) — the byte-accurate companion
        to :meth:`total_rows`, exported as the ``repro_cache_bytes``
        gauge by the serve layer."""
        with self._lock:
            return sum(
                e.relation.encoded_nbytes() for e in self._entries.values()
            )

    def entries(self) -> list[CachedResult]:
        """All entries, least-recently-used first."""
        with self._lock:
            return list(self._entries.values())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats_snapshot(self) -> CacheStats:
        """A point-in-time copy of the counters, taken under the lock —
        what cross-object readers (session stats, metric scrapes) should
        use instead of reading the live ``stats`` fields."""
        with self._lock:
            return replace(self.stats)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def put(
        self,
        query: FlockQuery,
        filter: AnyFilter,
        kind: str,
        relation: Relation,
        versions: dict[str, int],
        source_rows: int,
        param_columns: Iterable[str],
    ) -> Optional[CachedResult]:
        """Admit one result; returns the stored entry, or None when the
        cache kept an existing more-general entry or the result is too
        big to ever fit.

        Generality policy per (canonical key, kind, filter signature)
        slot: an entry computed under a *weaker* filter serves strictly
        more requests, so a weaker incumbent is kept (the new result
        adds nothing) and a weaker newcomer replaces a stricter
        incumbent.
        """
        with self._lock:
            if self.max_rows is not None and len(relation) > self.max_rows:
                self.stats.rejected_oversize += 1
                return None
            key = canonical_key(query)
            slot = (key, kind, filter_signature(filter))
            incumbent = self._entries.get(slot)
            if incumbent is not None and incumbent.is_current(
                lambda n: versions.get(n, incumbent.versions.get(n))
            ):
                if filter_implies(filter, incumbent.filter):
                    # Incumbent is at least as general: keep it,
                    # refresh LRU.
                    self._entries.move_to_end(slot)
                    return None
            entry = CachedResult(
                key=key,
                query=query,
                filter=filter,
                kind=kind,
                relation=relation,
                versions=dict(versions),
                source_rows=source_rows,
                param_columns=tuple(param_columns),
            )
            self._entries[slot] = entry
            self._entries.move_to_end(slot)
            self.stats.stored += 1
            self._evict()
            return entry

    @requires("_lock")
    def _evict(self) -> None:
        while (
            self.max_entries is not None
            and len(self._entries) > self.max_entries
        ):
            self._entries.popitem(last=False)
            self.stats.evicted += 1
        if self.max_rows is None:
            return
        while len(self._entries) > 1 and self.total_rows() > self.max_rows:
            self._entries.popitem(last=False)
            self.stats.evicted += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def find_exact(
        self, query: FlockQuery, filter: AnyFilter
    ) -> Optional[CachedResult]:
        """An ``"aggregates"`` entry for an alpha-equivalent query whose
        stored filter the requested one implies — i.e. an entry that can
        produce the *exact* answer by re-filtering.  Touches LRU on hit;
        counts a hit/miss."""
        slot = (canonical_key(query), KIND_AGGREGATES, filter_signature(filter))
        with self._lock:
            entry = self._entries.get(slot)
            if (
                entry is not None
                and alpha_equivalent(entry.query, query)
                and filter_implies(filter, entry.filter)
            ):
                self._entries.move_to_end(slot)
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
            return None

    def serve_exact(
        self, entry: CachedResult, filter: AnyFilter, name: str = "flock"
    ) -> Relation:
        """Materialize the exact answer for ``filter`` from an
        ``"aggregates"`` entry (re-filter, drop aggregate columns)."""
        assert entry.kind == KIND_AGGREGATES
        return refilter_aggregates(
            entry.relation, list(entry.param_columns), filter, name=name
        )

    def find_count(
        self, query: FlockQuery, filter: AnyFilter
    ) -> Optional[int]:
        """The *exact* survivor count of an alpha-equivalent query at
        exactly these thresholds, from either entry kind — for the
        optimizer's statistics probes, which need counts, not bounds.
        Requires mutual filter implication (equal thresholds)."""
        key = canonical_key(query)
        with self._lock:
            for kind in (KIND_SURVIVORS, KIND_AGGREGATES):
                slot = (key, kind, filter_signature(filter))
                entry = self._entries.get(slot)
                if (
                    entry is not None
                    and alpha_equivalent(entry.query, query)
                    and filter_implies(filter, entry.filter)
                    and filter_implies(entry.filter, filter)
                ):
                    self._entries.move_to_end(slot)
                    self.stats.hits += 1
                    return len(entry.relation)
            return None

    def find_bound(
        self,
        query: FlockQuery,
        filter: AnyFilter,
        param_columns: Iterable[str],
    ) -> Optional[CachedResult]:
        """The best cached *upper bound* for ``query``: an entry over the
        same parameter columns whose query contains ``query`` and whose
        filter the request implies.  Smallest survivor set wins (tightest
        bound).  Counts a bound hit when found; never counts a miss —
        bounds are opportunistic."""
        wanted = tuple(sorted(param_columns))
        with self._lock:
            best: Optional[tuple[int, tuple, CachedResult]] = None
            for slot, entry in self._entries.items():
                if tuple(sorted(entry.param_columns)) != wanted:
                    continue
                if not filter_implies(filter, entry.filter):
                    continue
                if not serves_as_bound(entry.query, query):
                    continue
                size = len(entry.relation)
                if best is None or size < best[0]:
                    best = (size, slot, entry)
            if best is None:
                return None
            _, slot, entry = best
            self._entries.move_to_end(slot)
            self.stats.bound_hits += 1
            return entry

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate_stale(self, version_of: Callable[[str], int]) -> int:
        """Drop every entry derived from a relation whose version moved.
        ``version_of(name)`` is typically ``db.version``.  Returns the
        number of entries dropped."""
        with self._lock:
            stale = [
                slot
                for slot, entry in self._entries.items()
                if not entry.is_current(version_of)
            ]
            for slot in stale:
                del self._entries[slot]
            self.stats.invalidated += len(stale)
            return len(stale)
