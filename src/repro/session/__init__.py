"""Interactive mining sessions with containment-aware result caching.

The paper's theory makes repeated mining cheap: containment (§3.1) says
when one query's materialized result upper-bounds another's, and
monotonicity (§5) says a result computed at threshold *t* serves any
request at a stricter threshold by re-filtering.  This package turns
both into a cache:

* :mod:`~repro.session.canonical` — canonical forms so alpha-equivalent
  queries share a key, plus the sound containment dispatch;
* :mod:`~repro.session.cache` — the LRU :class:`ResultCache` with
  threshold-aware exact serving, containment-based bound serving, and
  exact version-counter invalidation;
* :mod:`~repro.session.session` — the :class:`MiningSession` facade.

Quick start::

    from repro.session import MiningSession, with_support_threshold
    session = MiningSession(db)
    rel, report = session.mine(flock)                 # cold: evaluates
    hotter = with_support_threshold(flock, 50)
    rel2, report2 = session.mine(hotter)              # warm: re-filters
    assert report2.strategy_used == "cache"
"""

from .cache import (
    KIND_AGGREGATES,
    KIND_SURVIVORS,
    CachedResult,
    CacheStats,
    ResultCache,
    query_relations,
)
from .canonical import (
    alpha_equivalent,
    canonical_key,
    canonicalize,
    serves_as_bound,
)
from .session import (
    MiningSession,
    SessionSink,
    SessionStats,
    with_support_threshold,
)

__all__ = [
    "KIND_AGGREGATES",
    "KIND_SURVIVORS",
    "CachedResult",
    "CacheStats",
    "MiningSession",
    "ResultCache",
    "SessionSink",
    "SessionStats",
    "alpha_equivalent",
    "canonical_key",
    "canonicalize",
    "query_relations",
    "serves_as_bound",
    "with_support_threshold",
]
