"""Interactive mining sessions: one database, many related flocks.

Goethals & Van den Bussche observe that real association-rule mining is
a *session* — a human iterating thresholds and query variants against
one database — and that reusing earlier results dominates the cost of
such sessions.  :class:`MiningSession` is that loop's server side:

* it owns a :class:`~repro.relational.catalog.Database` (whose lazily
  cached statistics warm up across calls, since every optimizer run
  hits the same catalog);
* it owns a :class:`~repro.session.cache.ResultCache`, consulted before
  any evaluation (an alpha-equivalent flock at an implied — stricter or
  equal — threshold is answered by re-filtering the cached aggregates,
  with **zero** base-relation joins) and fed by every evaluation through
  a :class:`SessionSink` (final results with aggregate values;
  intermediate safe-subquery survivor sets from the optimizer and the
  dynamic evaluator);
* invalidation is exact: every cache entry records the version counters
  of the base relations it read, and any lookup first drops entries
  whose relations have since been mutated — untouched entries survive;
* PR 1's execution guards thread through every path: a session-level
  default :class:`~repro.guard.ResourceBudget`/
  :class:`~repro.guard.CancellationToken` applies to each
  :meth:`MiningSession.mine` call (cache hits included — the served
  answer still passes ``check_answer``), and per-call overrides win;
* with ``persist_path``, exact entries are also written through to a
  SQLite file (:meth:`~repro.flocks.sqlbackend.SQLiteBackend.\
persist_cached_result`), so a new process pointed at the same file
  starts warm — entries are re-adopted only when every source
  relation's cardinality still matches the recorded one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from typing import TYPE_CHECKING

from ..concurrency import locked
from ..errors import FilterError
from ..flocks.filters import (
    AnyFilter,
    CompositeFilter,
    FilterCondition,
    iter_conditions,
    parse_filter,
)
from ..flocks.flock import QueryFlock
from ..guard import CancellationToken, GuardLike, ResourceBudget
from ..relational.catalog import Database
from ..relational.relation import Relation

if TYPE_CHECKING:
    from ..flocks.mining import MiningReport
    from ..recovery import CheckpointStore, RetryPolicy
    from ..datalog.query import FlockQuery
from .cache import (
    KIND_AGGREGATES,
    KIND_SURVIVORS,
    CachedResult,
    ResultCache,
    query_relations,
)


def with_support_threshold(flock: QueryFlock, threshold: float) -> QueryFlock:
    """The same flock with its support conjunct's threshold replaced.

    The knob an interactive session turns most: re-ask the same flock at
    a different support level.  The first support-type conjunct (COUNT
    lower bound) is replaced; other conjuncts are kept.  Raises
    :class:`~repro.errors.FilterError` when the flock has no support
    conjunct to replace.
    """
    replaced = False
    conditions: list[FilterCondition] = []
    for condition in iter_conditions(flock.filter):
        if condition.is_support_condition and not replaced:
            conditions.append(
                FilterCondition(
                    condition.aggregate,
                    condition.relation_name,
                    condition.target,
                    condition.op,
                    threshold,
                    assume_nonnegative=condition.assume_nonnegative,
                )
            )
            replaced = True
        else:
            conditions.append(condition)
    if not replaced:
        raise FilterError(
            f"no support condition to override in {flock.filter}"
        )
    new_filter: AnyFilter = (
        conditions[0] if len(conditions) == 1
        else CompositeFilter(tuple(conditions))
    )
    return QueryFlock(flock.query, new_filter)


class SessionSink:
    """The cache side-channel one :func:`~repro.flocks.mining.mine` call
    threads through its evaluators (duck-typed; evaluators only see the
    four methods below).

    Per-call counters feed the :class:`~repro.flocks.mining.MiningReport`:
    ``step_hits`` counts pre-filter steps served from the cache and
    ``rows_saved`` the answer tuples those steps did not have to
    recompute.
    """

    def __init__(self, session: "MiningSession", flock: QueryFlock) -> None:
        self.session = session
        self.flock = flock
        #: Serving and publishing are only *sound* for monotone filters
        #: (the threshold-reuse rule is Section 5 monotonicity); for a
        #: non-monotone filter the sink is inert.
        self.active = flock.filter.is_monotone
        self.step_hits = 0
        self.rows_saved = 0

    # -- serving -------------------------------------------------------

    def serve_step(
        self, query: FlockQuery, param_columns: tuple[str, ...]
    ) -> Relation | None:
        """A cached upper bound usable as a pre-filter step's ok-relation
        (a superset of the true survivors is sound there — later steps
        re-filter), or None."""
        if not self.active:
            return None
        entry = self.session.cache.find_bound(
            query, self.flock.filter, param_columns
        )
        if entry is None:
            return None
        self.step_hits += 1
        self.rows_saved += entry.source_rows
        return entry.survivor_relation("ok")

    def serve_exact_count(self, query: FlockQuery) -> int | None:
        """A prior *exact* survivor count for an alpha-equivalent query
        at exactly these thresholds (for the optimizer's statistics
        probes, where an upper bound would distort the cost model)."""
        if not self.active:
            return None
        count = self.session.cache.find_count(query, self.flock.filter)
        if count is not None:
            self.step_hits += 1
        return count

    # -- publishing ----------------------------------------------------

    def publish_step(
        self,
        query: FlockQuery,
        param_columns: tuple[str, ...],
        ok: Relation,
        source_rows: int,
    ) -> None:
        """Record a pre-filter step's survivor set.  Skipped when the
        query references non-base predicates (ok-atoms of earlier plan
        steps): such survivors depend on transient scratch state."""
        if not self.active:
            return
        names = query_relations(query)
        if not names or not all(n in self.session.db for n in names):
            return
        self.session.cache.put(
            query,
            self.flock.filter,
            KIND_SURVIVORS,
            ok,
            self.session.db.versions(names),
            source_rows,
            param_columns,
        )

    def publish_final(
        self, with_aggregates: Relation, source_rows: int
    ) -> None:
        """Record the flock's full answer together with its per-conjunct
        aggregate values — the exact, re-filterable entry that serves
        any later request at stricter-or-equal thresholds."""
        if not self.active:
            return
        names = query_relations(self.flock.query)
        if not all(n in self.session.db for n in names):
            return
        entry = self.session.cache.put(
            self.flock.query,
            self.flock.filter,
            KIND_AGGREGATES,
            with_aggregates,
            self.session.db.versions(names),
            source_rows,
            self.flock.parameter_columns,
        )
        if entry is not None:
            self.session._persist_entry(entry)


@dataclass
class SessionStats:
    """A point-in-time summary of one session's cache behaviour."""

    queries: int
    cache_hits: int
    cache_misses: int
    bound_hits: int
    invalidated: int
    evicted: int
    entries: int
    cached_rows: int

    def __str__(self) -> str:
        return (
            f"{self.queries} queries, {self.cache_hits} exact hits, "
            f"{self.bound_hits} bound hits, {self.cache_misses} misses; "
            f"{self.entries} entries ({self.cached_rows} rows) cached, "
            f"{self.invalidated} invalidated, {self.evicted} evicted"
        )


class MiningSession:
    """A stateful facade for repeated mining over one database.

    Args:
        db: the database every flock runs against.  Mutate it through
            ``session.db`` (``add``/``remove``) — the version counters
            it bumps are what keeps the cache honest.
        max_cache_rows / max_cache_entries: LRU bounds for the result
            cache (ignored when ``cache`` is passed).
        cache: share a pre-built :class:`ResultCache` across sessions.
        budget / cancel: session-wide defaults applied to every
            :meth:`mine` call that does not pass its own.
        backend: default execution backend per call (``"memory"`` /
            ``"sqlite"``).
        parallelism: default worker count per call (``None`` defers to
            the per-call argument / ``REPRO_JOBS`` environment
            variable); see :func:`repro.flocks.mining.mine`.
        persist_path: SQLite file that exact cache entries are written
            through to and restored from, surviving the process.
        lint: default lint flag per call.
        join_order: default join-ordering mode per call (``"greedy"`` /
            ``"selinger"`` / ``"ues"``).
        runtime_filters: default runtime-filter injection flag per call
            (``None`` = on exactly when the call's join order is
            ``"ues"``).
    """

    #: Lock discipline, proven by ``repro.analysis.conlint``: the serve
    #: layer drives one session from many worker threads, so the
    #: session's own counters only move under ``_counter_lock`` (the
    #: cache locks itself).  Lock order: ``MiningSession._counter_lock``
    #: may be held while taking ``ResultCache._lock`` (stats), never the
    #: reverse — the cache calls back into nothing.
    GUARDED = {"queries": "_counter_lock", "_persist_counter": "_counter_lock"}

    def __init__(
        self,
        db: Database,
        *,
        cache: ResultCache | None = None,
        max_cache_rows: int | None = 100_000,
        max_cache_entries: int | None = 64,
        budget: ResourceBudget | None = None,
        cancel: CancellationToken | None = None,
        backend: str = "memory",
        persist_path: str | None = None,
        lint: bool = True,
        parallelism: int | None = None,
        join_order: str = "greedy",
        runtime_filters: bool | None = None,
        retry: "RetryPolicy | None" = None,
        checkpoint: "CheckpointStore | str | None" = None,
    ) -> None:
        self.db = db
        self.cache = cache if cache is not None else ResultCache(
            max_rows=max_cache_rows, max_entries=max_cache_entries
        )
        self.budget = budget
        self.cancel = cancel
        self.backend = backend
        self.lint = lint
        self.parallelism = parallelism
        #: Session-wide optimizer defaults: the join-ordering mode and
        #: runtime-filter injection flag every ``mine()`` call inherits
        #: unless it passes its own (see
        #: :func:`repro.flocks.mining.mine`).
        self.join_order = join_order
        self.runtime_filters = runtime_filters
        #: Session-wide recovery defaults: a
        #: :class:`~repro.recovery.RetryPolicy` every ``mine()`` call
        #: inherits, and a :class:`~repro.recovery.CheckpointStore` (or
        #: path) checkpointed calls write through.
        self.retry = retry
        self.checkpoint = checkpoint
        self.queries = 0
        # The serve layer drives one session from many worker threads;
        # the cache locks itself, this lock covers the session's own
        # counters.
        self._counter_lock = threading.Lock()
        self._persist_backend = None
        self._persist_counter = 0
        if persist_path is not None:
            from ..flocks.sqlbackend import SQLiteBackend

            self._persist_backend = SQLiteBackend(path=persist_path)
            self._restore_persisted()

    # ------------------------------------------------------------------
    # The front door
    # ------------------------------------------------------------------

    def mine(
        self,
        flock: QueryFlock,
        strategy: str = "auto",
        *,
        lint: bool | None = None,
        budget: ResourceBudget | None = None,
        cancel: CancellationToken | None = None,
        guard: GuardLike = None,
        backend: str | None = None,
        parallelism: int | None = None,
        join_order: str | None = None,
        runtime_filters: bool | None = None,
        retry: "RetryPolicy | None" = None,
        checkpoint: "CheckpointStore | str | None" = None,
        run_id: str | None = None,
        resume: str | None = None,
    ) -> "tuple[Relation, MiningReport]":
        """Evaluate a flock with full cache participation; returns
        ``(relation, MiningReport)`` exactly like
        :func:`repro.flocks.mining.mine` (which this delegates to,
        passing ``session=self``).  ``retry``/``checkpoint`` default to
        the session-wide settings; ``run_id``/``resume`` are per call
        (see :mod:`repro.recovery`)."""
        from ..flocks.mining import mine

        with self._counter_lock:
            self.queries += 1
        if guard is None and budget is None and cancel is None:
            budget, cancel = self.budget, self.cancel
        return mine(
            self.db,
            flock,
            strategy=strategy,
            lint=self.lint if lint is None else lint,
            budget=budget,
            cancel=cancel,
            guard=guard,
            backend=self.backend if backend is None else backend,
            session=self,
            parallelism=(
                self.parallelism if parallelism is None else parallelism
            ),
            join_order=self.join_order if join_order is None else join_order,
            runtime_filters=(
                self.runtime_filters
                if runtime_filters is None
                else runtime_filters
            ),
            retry=self.retry if retry is None else retry,
            checkpoint=self.checkpoint if checkpoint is None else checkpoint,
            run_id=run_id,
            resume=resume,
        )

    # ------------------------------------------------------------------
    # Cache interface (used by mining.mine)
    # ------------------------------------------------------------------

    def invalidate_stale(self) -> int:
        """Drop entries whose base relations were mutated; exact, per
        entry.  Called before every lookup; also useful directly after
        bulk loads."""
        return self.cache.invalidate_stale(self.db.version)

    def lookup(
        self, flock: QueryFlock
    ) -> tuple[CachedResult, Relation] | None:
        """An exact cached answer for this flock, or None.

        A hit requires an alpha-equivalent query and a stored filter the
        request implies (equal signature, stricter-or-equal thresholds);
        the stored aggregates are re-filtered at the requested
        thresholds, so the relation returned is *the* answer."""
        if not flock.filter.is_monotone:
            return None
        self.invalidate_stale()
        entry = self.cache.find_exact(flock.query, flock.filter)
        if entry is None:
            return None
        return entry, self.cache.serve_exact(entry, flock.filter)

    def sink(self, flock: QueryFlock) -> SessionSink:
        """A fresh per-call sink for this flock."""
        return SessionSink(self, flock)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @locked("_counter_lock")
    def stats(self) -> SessionStats:
        # Holding _counter_lock while the cache takes its own lock is
        # the declared lock order (session → cache); the cache never
        # calls back into the session, so the order is acyclic — and
        # conlint's lock-order graph proves it stays that way.
        cache_stats = self.cache.stats_snapshot()
        return SessionStats(
            queries=self.queries,
            cache_hits=cache_stats.hits,
            cache_misses=cache_stats.misses,
            bound_hits=cache_stats.bound_hits,
            invalidated=cache_stats.invalidated,
            evicted=cache_stats.evicted,
            entries=len(self.cache),
            cached_rows=self.cache.total_rows(),
        )

    def close(self) -> None:
        """Release the persistence backend, if any."""
        if self._persist_backend is not None:
            self._persist_backend.close()
            self._persist_backend = None

    def __enter__(self) -> "MiningSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _persist_entry(self, entry: CachedResult) -> None:
        """Write one exact entry through to the SQLite file."""
        if self._persist_backend is None:
            return
        # Worker threads publish finals concurrently: the sequence must
        # be unique per entry or two threads would overwrite one
        # another's persisted table.
        with self._counter_lock:
            self._persist_counter += 1
            sequence = self._persist_counter
        metadata = {
            "query": str(entry.query),
            "filter": str(entry.filter),
            "param_columns": list(entry.param_columns),
            "source_rows": entry.source_rows,
            "base_cards": {
                name: len(self.db.get(name))
                for name in entry.versions
                if name in self.db
            },
        }
        try:
            self._persist_backend.persist_cached_result(
                f"_repro_cache_{sequence}",
                entry.relation,
                metadata,
            )
        except Exception:
            # Persistence is an optimization; a full disk or locked file
            # must not fail the mining call that triggered it.
            pass

    def _restore_persisted(self) -> None:
        """Adopt persisted entries whose source relations still match.

        Version counters are process-local, so the cross-process
        staleness screen compares each base relation's *cardinality*
        with the recorded one; survivors are adopted under the current
        versions.  (A same-cardinality edit defeats the screen — callers
        who mutate data between processes should clear the file.)
        """
        from ..datalog.parser import parse_query

        assert self._persist_backend is not None
        try:
            persisted = self._persist_backend.list_cached_results()
        except Exception:
            return
        for table_name, metadata in persisted:
            with self._counter_lock:
                self._persist_counter = max(
                    self._persist_counter,
                    int(table_name.rsplit("_", 1)[-1])
                    if table_name.rsplit("_", 1)[-1].isdigit() else 0,
                )
            cards = metadata.get("base_cards", {})
            if not cards:
                continue
            if not all(
                name in self.db and len(self.db.get(name)) == card
                for name, card in cards.items()
            ):
                continue
            try:
                query = parse_query(metadata["query"])
                filter_ = parse_filter(metadata["filter"])
                relation = self._persist_backend.load_cached_result(
                    table_name, metadata
                )
            except Exception:
                continue
            self.cache.put(
                query,
                filter_,
                KIND_AGGREGATES,
                relation,
                self.db.versions(query_relations(query)),
                int(metadata.get("source_rows", 0)),
                metadata.get("param_columns", []),
            )
