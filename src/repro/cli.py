"""Command-line interface: run query flocks against CSV data.

Subcommands:

* ``run``   — evaluate a flock file against a data directory and print
  the acceptable parameter assignments;
* ``plan``  — show the plan a strategy would use (without running it);
* ``sql``   — emit the naive SQL and the rewritten SQL script;
* ``explain`` — safety/subquery analysis of the flock text;
* ``session`` — REPL-style loop running many flocks against one warm
  database with a containment-aware result cache (``repro.session``);
* ``check`` — one-pass verification: lint + safety + certified plan
  legality + (with data) IR schema checking, ``--format json``
  available, exit 0 clean / 3 warnings / 4 errors (``lint`` is the
  data-less alias);
* ``serve`` — start the mining service: an HTTP/JSON daemon sharing
  one session/cache across many concurrent clients (``repro.serve``);
* ``query`` — evaluate a flock against a running ``repro serve``
  daemon (the client side of ``serve``).

A *flock file* is the paper's two-section notation (Fig. 2)::

    QUERY:
    answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2

    FILTER:
    COUNT(answer.B) >= 20

A *data directory* holds one ``<relation>.csv`` per base relation, with
a header row of column names (see ``repro.relational.io``).

Examples::

    python -m repro run flock.txt data/ --strategy dynamic
    python -m repro plan flock.txt data/
    python -m repro sql flock.txt data/ --rewrite
    python -m repro explain flock.txt
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from .datalog.safety import check_safety
from .datalog.subqueries import safe_subqueries, unsafe_subqueries
from .errors import ReproError
from .guard import ResourceBudget
from .flocks import (
    evaluate_flock,
    evaluate_flock_dynamic,
    execute_plan,
    flock_to_sql,
    parse_flock,
    plan_to_sql,
    single_step_plan,
)
from .flocks.optimizer import FlockOptimizer
from .relational.io import load_database


STRATEGIES = ("auto", "naive", "optimized", "dynamic", "stats")


def _load(flock_path: str, data_dir: str | None):
    text = Path(flock_path).read_text()
    flock = parse_flock(text)
    db = load_database(data_dir) if data_dir else None
    return flock, db


def _optimized_plan(db, flock, gather: bool):
    if flock.is_union:
        from .flocks.optimizer import optimize_union

        return optimize_union(db, flock)
    optimizer = FlockOptimizer(db, flock, gather_statistics=gather)
    return optimizer.best_plan().plan


def _nonnegative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if value < 0:
        raise argparse.ArgumentTypeError("must be non-negative")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 0:
        raise argparse.ArgumentTypeError("must be non-negative")
    return value


def _positive_int(text: str) -> int:
    value = _nonnegative_int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _run_budget(args: argparse.Namespace) -> ResourceBudget | None:
    """Build the execution budget from --timeout/--max-rows, if any."""
    if args.timeout is None and args.max_rows is None:
        return None
    return ResourceBudget(
        seconds=args.timeout, max_intermediate_rows=args.max_rows
    )


def cmd_run(args: argparse.Namespace) -> int:
    flock, db = _load(args.flock, args.data)
    if db is None:
        print("run requires a data directory", file=sys.stderr)
        return 2
    budget = _run_budget(args)
    guard = budget.start() if budget is not None else None
    started = time.perf_counter()
    checkpointed = args.checkpoint is not None
    if args.resume is not None and not checkpointed:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    if (
        args.strategy == "auto" or args.backend == "sqlite"
        or args.jobs > 1 or checkpointed
    ):
        from .errors import ResumeError
        from .flocks.mining import mine

        try:
            relation, report = mine(
                db, flock, strategy=args.strategy,
                budget=budget, backend=args.backend,
                join_order=args.join_order,
                runtime_filters=args.runtime_filters,
                parallelism=args.jobs,
                checkpoint=args.checkpoint,
                run_id=args.run_id,
                resume=args.resume,
            )
        except (ResumeError, ValueError) as error:
            if not checkpointed:
                raise
            print(f"error: {error}", file=sys.stderr)
            return 2
        if report.run_id is not None:
            print(
                f"# checkpoint run {report.run_id}: "
                f"{report.steps_resumed} step(s) resumed, "
                f"{report.steps_checkpointed} checkpointed "
                f"-> {args.checkpoint}",
                file=sys.stderr,
            )
        trace_text = str(report)
    elif args.strategy == "naive":
        relation = evaluate_flock(
            db, flock, guard=guard, order_strategy=args.join_order
        )
        trace_text = ""
    elif args.strategy == "dynamic":
        result, trace = evaluate_flock_dynamic(
            db, flock, guard=guard, order_strategy=args.join_order
        )
        relation = result.relation
        trace_text = str(trace)
    else:
        gather = args.strategy == "stats"
        plan = _optimized_plan(db, flock, gather)
        rf = (
            args.join_order == "ues"
            if args.runtime_filters is None
            else args.runtime_filters
        )
        result = execute_plan(
            db, flock, plan, validate=False, guard=guard,
            order_strategy=args.join_order,
            runtime_filters=rf,
        )
        relation = result.relation
        trace_text = str(result.trace)
    elapsed = time.perf_counter() - started

    print(f"# {len(relation)} acceptable assignments "
          f"({args.strategy}, {elapsed * 1e3:.1f} ms)")
    print("\t".join(relation.columns))
    for row in sorted(relation.tuples, key=repr)[: args.limit]:
        print("\t".join(str(v) for v in row))
    if len(relation) > args.limit:
        print(f"... and {len(relation) - args.limit} more "
              "(raise --limit to see them)")
    if args.verbose and trace_text:
        print("\n# trace", file=sys.stderr)
        print(trace_text, file=sys.stderr)
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    flock, db = _load(args.flock, args.data)
    if args.strategy == "naive" or db is None:
        plan = single_step_plan(flock)
        note = "naive single-step plan" + (
            "" if db is not None else " (no data directory: no statistics)"
        )
    else:
        plan = _optimized_plan(db, flock, args.strategy == "stats")
        note = f"cost-based plan ({args.strategy})"
    print(f"# {note}")
    print(plan.render(flock))
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    flock, db = _load(args.flock, args.data)
    print("-- naive translation (Fig. 1 style)")
    print(flock_to_sql(flock, db))
    if args.rewrite:
        if db is None:
            print("-- (rewrite requires a data directory for statistics)",
                  file=sys.stderr)
            return 2
        plan = _optimized_plan(db, flock, gather=False)
        print("\n-- a-priori rewrite")
        print(plan_to_sql(flock, plan, db))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    flock, db = _load(args.flock, args.data)
    print(f"parameters: {', '.join(flock.parameter_columns)}")
    print(f"filter:     {flock.filter} "
          f"(monotone: {flock.filter.is_monotone})")
    print(f"relations:  {', '.join(sorted(flock.predicates()))}")
    for index, rule in enumerate(flock.rules):
        label = f"rule {index + 1}" if flock.is_union else "query"
        report = check_safety(rule)
        print(f"\n{label}: {rule}")
        print(f"  safe: {report.is_safe}")
        safe = safe_subqueries(rule)
        unsafe = unsafe_subqueries(rule)
        print(f"  nontrivial subqueries: {len(safe) + len(unsafe)} "
              f"({len(safe)} safe)")
        for candidate in safe:
            params = ", ".join(sorted(str(p) for p in candidate.parameters))
            print(f"    [{params or '-'}] {candidate.query}")
        if db is not None:
            from .relational.explain import explain_conjunctive

            print()
            print("  " + explain_conjunctive(db, rule).replace("\n", "\n  "))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from .relational.io import save_database
    from . import workloads

    if args.domain == "baskets":
        db = workloads.basket_database(
            n_baskets=args.size, n_items=max(args.size // 2, 10),
            skew=args.skew, seed=args.seed,
        )
    elif args.domain == "weighted":
        db = workloads.generate_weighted_baskets(
            n_baskets=args.size, n_items=max(args.size // 2, 10),
            skew=args.skew, seed=args.seed,
        )
    elif args.domain == "medical":
        db = workloads.generate_medical(
            n_patients=args.size, seed=args.seed
        ).db
    elif args.domain == "web":
        db = workloads.generate_webdocs(
            n_documents=args.size, n_anchors=args.size * 3, seed=args.seed
        ).db
    elif args.domain == "graph":
        db = workloads.generate_hub_digraph(seed=args.seed)
    elif args.domain == "articles":
        db = workloads.article_database(
            n_articles=args.size, skew=args.skew, seed=args.seed
        )
    else:  # pragma: no cover - argparse choices guard
        raise AssertionError(args.domain)
    save_database(db, args.outdir)
    print(f"wrote {db} to {args.outdir}")
    return 0


def cmd_session(args: argparse.Namespace) -> int:
    """REPL-style interactive mining session over one warm database.

    Reads commands from a ``--script`` file or stdin, one per line::

        run FLOCKFILE [SUPPORT]   evaluate a flock (optional support
                                  threshold override); repeated/stricter
                                  runs come from the result cache
        stats                     print the session's cache counters
        help                      list commands
        quit / exit               leave (EOF works too)
    """
    from .session import MiningSession, with_support_threshold

    db = load_database(args.data)
    budget = _run_budget(args)
    session = MiningSession(
        db,
        budget=budget,
        backend=args.backend,
        max_cache_rows=args.cache_rows,
        persist_path=args.persist,
        parallelism=args.jobs,
    )

    if args.script is not None:
        lines = Path(args.script).read_text().splitlines()
        interactive = False
    else:
        lines = None
        interactive = sys.stdin.isatty()

    def commands():
        if lines is not None:
            yield from lines
            return
        while True:
            if interactive:
                print("repro> ", end="", file=sys.stderr, flush=True)
            line = sys.stdin.readline()
            if not line:
                return
            yield line

    status = 0
    with session:
        for raw in commands():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            command, rest = parts[0].lower(), parts[1:]
            if command in ("quit", "exit"):
                break
            if command == "help":
                print("commands: run FLOCKFILE [SUPPORT] | stats | "
                      "help | quit")
                continue
            if command == "stats":
                print(session.stats())
                continue
            if command == "run":
                if not rest:
                    print("usage: run FLOCKFILE [SUPPORT]", file=sys.stderr)
                    status = 2
                    continue
                try:
                    flock = parse_flock(Path(rest[0]).read_text())
                    if len(rest) > 1:
                        threshold_text = rest[1]
                        threshold = (
                            float(threshold_text) if "." in threshold_text
                            else int(threshold_text)
                        )
                        flock = with_support_threshold(flock, threshold)
                    relation, report = session.mine(
                        flock, strategy=args.strategy
                    )
                except (ReproError, FileNotFoundError, ValueError) as error:
                    print(f"error: {error}", file=sys.stderr)
                    status = 1
                    continue
                cache_note = (
                    f" +{report.cache_step_hits} step hits"
                    if report.cache_step_hits else ""
                )
                print(f"# {len(relation)} acceptable assignments "
                      f"({report.strategy_used}{cache_note}, "
                      f"{report.seconds * 1e3:.1f} ms)")
                print("\t".join(relation.columns))
                for row in sorted(relation.tuples, key=repr)[: args.limit]:
                    print("\t".join(str(v) for v in row))
                if len(relation) > args.limit:
                    print(f"... and {len(relation) - args.limit} more")
                continue
            print(f"unknown command: {command!r} (try 'help')",
                  file=sys.stderr)
            status = 2
    return status


def cmd_serve(args: argparse.Namespace) -> int:
    """Start the mining service daemon over one CSV data directory."""
    from .serve import MiningService, ServerConfig, serve_blocking

    budget = _run_budget(args)
    db = load_database(args.data)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        tenant_budget=budget,
        max_queued_per_tenant=args.max_queued,
        cache_entries=args.cache_entries,
        cache_rows=args.cache_rows,
        backend=args.backend,
        strategy=args.strategy,
        parallelism=args.jobs,
        join_order=args.join_order,
        runtime_filters=args.runtime_filters,
        checkpoint_path=args.checkpoint,
    )
    service = MiningService(db, config)

    def ready(address: str) -> None:
        relations = ", ".join(
            f"{name}[{len(db.get(name))}]" for name in db.names()
        )
        print(f"serving {relations or '(empty database)'}", file=sys.stderr)
        print(f"listening on {address} "
              f"({config.workers} worker(s); Ctrl-C to stop)",
              file=sys.stderr, flush=True)

    serve_blocking(service, ready=ready)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Evaluate one flock against a running ``repro serve`` daemon."""
    from .serve import MiningClient, ServeError

    text = Path(args.flock).read_text()
    client = MiningClient(args.server, tenant=args.tenant)
    try:
        result = client.mine(
            text,
            threshold=args.threshold,
            strategy=args.strategy,
            timeout=args.timeout,
            max_rows=args.max_rows,
            limit=args.limit,
        )
    except ServeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    report = result.get("report", {})
    cache_note = ""
    if report.get("cache_hits"):
        cache_note = ", cache hit"
    elif report.get("cache_step_hits"):
        cache_note = f", {report['cache_step_hits']} step hit(s)"
    print(f"# {result['row_count']} acceptable assignments "
          f"({report.get('strategy_used', '?')}{cache_note}, "
          f"{result['seconds'] * 1e3:.1f} ms, run {result['run_id']})")
    print("\t".join(result["columns"]))
    for row in result["rows"]:
        print("\t".join(str(v) for v in row))
    if result.get("truncated"):
        print(f"... and {result['row_count'] - len(result['rows'])} more "
              "(raise --limit to see them)")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """One-pass verification: lint + safety + plan certification +
    (with a data directory) the IR schema check.

    Exit codes: 0 clean, 3 warnings only, 4 errors.  ``info``-severity
    diagnostics are printed but never affect the exit code.
    ``repro lint`` is an alias limited to no data directory.
    ``--concurrency`` runs the conlint passes over source paths
    instead (the positional becomes a path, default ``src/repro``).
    """
    if getattr(args, "concurrency", False):
        from .analysis.conlint.runner import (
            discover, lint_paths, render_text, to_json,
        )

        paths = [args.flock] if args.flock else ["src/repro"]
        report = lint_paths(paths)
        if args.format == "json":
            import json

            print(json.dumps(to_json(report), indent=2, sort_keys=True))
        else:
            print(render_text(report, len(discover(paths))))
        return report.exit_code()
    from .analysis.check import check_flock

    if args.flock is None:
        print("error: a flock file is required (or pass --concurrency)",
              file=sys.stderr)
        return 2
    flock, db = _load(args.flock, args.data)
    result = check_flock(flock, db=db)
    if args.format == "json":
        import json

        print(json.dumps(result.to_dict(), indent=2))
        return result.exit_code()
    for diagnostic in result.report:
        print(diagnostic)
    errors = len(result.report.errors)
    warnings = len(result.report.warnings)
    if errors or warnings:
        print(f"{errors} error(s), {warnings} warning(s)")
    else:
        print("clean: no warnings")
    return result.exit_code()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query flocks (SIGMOD 1998) — mine relational data "
        "with parametrized queries and support filters.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate a flock against CSV data")
    run.add_argument("flock", help="path to a flock file (QUERY:/FILTER:)")
    run.add_argument("data", help="directory of <relation>.csv files")
    run.add_argument("--strategy", choices=STRATEGIES, default="auto")
    run.add_argument("--backend", choices=("memory", "sqlite"),
                     default="memory",
                     help="execution backend (sqlite falls back to memory "
                     "on backend failure)")
    run.add_argument("--join-order", choices=("greedy", "selinger", "ues"),
                     default="greedy", dest="join_order",
                     help="join ordering plans are lowered with: greedy "
                     "(default), the Selinger-style DP orderer, or ues "
                     "(pessimistic upper-bound ordering — robust on "
                     "skewed data)")
    run.add_argument("--runtime-filters", action="store_true", default=None,
                     dest="runtime_filters",
                     help="inject semi-join filters from materialized "
                     "pre-filter steps into later scans (default: on "
                     "exactly when --join-order=ues)")
    run.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="persist each completed FILTER step to this "
                          "SQLite file so an interrupted run can be "
                          "resumed (requires a plan-based strategy)")
    run.add_argument("--run-id", default=None, metavar="ID",
                     help="explicit run id for --checkpoint "
                          "(default: generated)")
    run.add_argument("--resume", default=None, metavar="RUN_ID",
                     help="resume the checkpointed run RUN_ID from "
                          "--checkpoint, re-executing only unfinished "
                          "steps")
    run.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                     help="worker count for partitioned parallel "
                     "execution (1 = serial; REPRO_JOBS also honoured)")
    run.add_argument("--timeout", type=_nonnegative_float, default=None,
                     metavar="SECONDS",
                     help="wall-clock budget; exceeding it aborts with a "
                     "budget error instead of running forever")
    run.add_argument("--max-rows", type=_nonnegative_int, default=None,
                     metavar="N",
                     help="largest intermediate relation allowed during "
                     "evaluation")
    run.add_argument("--limit", type=int, default=50,
                     help="max result rows to print")
    run.add_argument("--verbose", action="store_true",
                     help="print the execution trace to stderr")
    run.set_defaults(fn=cmd_run)

    plan = sub.add_parser("plan", help="show the chosen query plan")
    plan.add_argument("flock")
    plan.add_argument("data", nargs="?", default=None)
    plan.add_argument("--strategy", choices=("naive", "optimized", "stats"),
                      default="optimized")
    plan.set_defaults(fn=cmd_plan)

    sql = sub.add_parser("sql", help="emit SQL translations")
    sql.add_argument("flock")
    sql.add_argument("data", nargs="?", default=None)
    sql.add_argument("--rewrite", action="store_true",
                     help="also emit the a-priori rewrite script")
    sql.set_defaults(fn=cmd_sql)

    explain = sub.add_parser(
        "explain", help="safety and subquery analysis of a flock"
    )
    explain.add_argument("flock")
    explain.add_argument(
        "data", nargs="?", default=None,
        help="optional data directory: adds EXPLAIN join-order output",
    )
    explain.set_defaults(fn=cmd_explain)

    session = sub.add_parser(
        "session",
        help="interactive mining session with a warm result cache",
    )
    session.add_argument("data", help="directory of <relation>.csv files")
    session.add_argument("--strategy", choices=STRATEGIES, default="auto")
    session.add_argument("--backend", choices=("memory", "sqlite"),
                         default="memory")
    session.add_argument("--script", default=None, metavar="FILE",
                         help="read commands from FILE instead of stdin")
    session.add_argument("--timeout", type=_nonnegative_float, default=None,
                         metavar="SECONDS",
                         help="per-query wall-clock budget")
    session.add_argument("--max-rows", type=_nonnegative_int, default=None,
                         metavar="N",
                         help="per-query intermediate row budget")
    session.add_argument("--cache-rows", type=_nonnegative_int,
                         default=100_000, metavar="N",
                         help="total rows the result cache may hold")
    session.add_argument("--persist", default=None, metavar="PATH",
                         help="SQLite file to persist cached results in "
                         "(warm start across invocations)")
    session.add_argument("--jobs", type=_positive_int, default=1,
                         metavar="N",
                         help="worker count for partitioned parallel "
                         "execution (1 = serial)")
    session.add_argument("--limit", type=int, default=50,
                         help="max result rows to print per query")
    session.set_defaults(fn=cmd_session)

    check = sub.add_parser(
        "check",
        help="verify a flock: lint + safety + certified plan legality "
        "+ IR schema check (exit 0 clean / 3 warnings / 4 errors)",
    )
    check.add_argument(
        "flock", nargs="?", default=None,
        help="path to a flock file (QUERY:/FILTER:); with --concurrency, "
        "a source path to lint instead (default src/repro)",
    )
    check.add_argument(
        "data", nargs="?", default=None,
        help="optional data directory: also lowers and type-checks every "
        "FILTER step's physical plan against the catalog",
    )
    check.add_argument("--format", choices=("text", "json"), default="text",
                       help="output format (json emits the structured "
                       "diagnostics)")
    check.add_argument(
        "--concurrency", action="store_true",
        help="run the concurrency lint (lock discipline, wire safety, "
        "async blocking, cancellation) over source paths",
    )
    check.set_defaults(fn=cmd_check)

    lint = sub.add_parser(
        "lint",
        help="alias of 'check' without a data directory "
        "(exit 3 when warnings found)",
    )
    lint.add_argument("flock")
    lint.set_defaults(fn=cmd_check, data=None, format="text")

    serve = sub.add_parser(
        "serve",
        help="start the mining service (HTTP/JSON daemon over one "
        "shared session/cache)",
    )
    serve.add_argument("data", help="directory of <relation>.csv files")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=_nonnegative_int, default=8321,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       metavar="N",
                       help="concurrent mining calls (dispatcher threads)")
    serve.add_argument("--strategy", choices=STRATEGIES, default="auto",
                       help="default strategy for requests that name none")
    serve.add_argument("--backend", choices=("memory", "sqlite"),
                       default="memory")
    serve.add_argument("--jobs", type=_positive_int, default=None,
                       metavar="N",
                       help="default per-call partitioned parallelism")
    serve.add_argument("--join-order", choices=("greedy", "selinger", "ues"),
                       default="greedy", dest="join_order",
                       help="default join ordering for requests that "
                       "name none")
    serve.add_argument("--runtime-filters", action="store_true",
                       default=None, dest="runtime_filters",
                       help="default runtime semi-join filter injection "
                       "(omitted: on exactly when the join order is ues)")
    serve.add_argument("--timeout", type=_nonnegative_float, default=None,
                       metavar="SECONDS",
                       help="per-request wall-clock cap (tenant budget; "
                       "requests can tighten it, never loosen it)")
    serve.add_argument("--max-rows", type=_nonnegative_int, default=None,
                       metavar="N",
                       help="per-request intermediate-row cap")
    serve.add_argument("--max-queued", type=_positive_int, default=16,
                       metavar="N",
                       help="per-tenant bound on queued+running requests "
                       "(beyond it: HTTP 429)")
    serve.add_argument("--cache-entries", type=_positive_int, default=256,
                       metavar="N",
                       help="result-cache entry cap")
    serve.add_argument("--cache-rows", type=_nonnegative_int,
                       default=500_000, metavar="N",
                       help="result-cache total-row cap")
    serve.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="SQLite file enabling checkpointed runs "
                       "({\"checkpoint\": true} requests and "
                       "/v1/runs progress reporting)")
    serve.set_defaults(fn=cmd_serve)

    query = sub.add_parser(
        "query",
        help="evaluate a flock against a running 'repro serve' daemon",
    )
    query.add_argument("flock", help="path to a flock file (QUERY:/FILTER:)")
    query.add_argument("--server", required=True, metavar="URL",
                       help="base URL, e.g. http://127.0.0.1:8321")
    query.add_argument("--tenant", default=None,
                       help="tenant name for admission control")
    query.add_argument("--threshold", type=_nonnegative_float, default=None,
                       help="override the flock's support threshold")
    query.add_argument("--strategy", choices=STRATEGIES, default=None)
    query.add_argument("--timeout", type=_nonnegative_float, default=None,
                       metavar="SECONDS",
                       help="request wall-clock budget")
    query.add_argument("--max-rows", type=_nonnegative_int, default=None,
                       metavar="N",
                       help="request intermediate-row budget")
    query.add_argument("--limit", type=int, default=50,
                       help="max result rows to fetch")
    query.set_defaults(fn=cmd_query)

    generate = sub.add_parser(
        "generate", help="write a synthetic workload as CSV files"
    )
    generate.add_argument(
        "domain",
        choices=("baskets", "weighted", "medical", "web", "graph", "articles"),
    )
    generate.add_argument("outdir", help="directory for <relation>.csv files")
    generate.add_argument("--size", type=int, default=500,
                          help="scale knob (baskets/patients/documents/...)")
    generate.add_argument("--skew", type=float, default=1.1,
                          help="Zipf exponent where applicable")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(fn=cmd_generate)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Reader closed early (e.g. `repro query ... | head`): the
        # POSIX convention is a silent exit, not a traceback.  Point
        # stdout at devnull so the interpreter's exit-time flush of the
        # broken pipe cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
