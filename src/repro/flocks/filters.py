"""Filter conditions for query flocks (Sections 2.1 and 5).

A filter is "a condition about the result of the query" for one
parameter assignment — in the paper always an aggregate comparison such
as ``COUNT(answer.P) >= 20`` (a *support* condition) or, in the
future-work section, ``SUM(answer.W) >= 20`` for weighted baskets.

The a-priori generalization is sound exactly for **monotone** filters:
"if the condition is true for a given set then it must also be true for
any superset of the original set".  A safe subquery's result (per
assignment) is a superset of the full query's result, so an assignment
that *fails* the filter on the subquery can never pass it on the full
query.  :attr:`FilterCondition.is_monotone` classifies each supported
(aggregate, comparison) combination; the optimizer refuses to build
pruning plans for non-monotone filters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence, Union

from ..errors import FilterError, ParseError
from ..datalog.atoms import ComparisonOp
from ..relational.aggregates import AggregateFunction
from ..relational.relation import Relation
from ..relational.aggregates import group_aggregate, having


#: The target column marker for "count whole answer tuples" —
#: the paper's ``COUNT(answer(*))`` in Fig. 4.
STAR = "*"


@dataclass(frozen=True)
class FilterCondition:
    """An aggregate threshold over the answer relation of one assignment.

    Attributes:
        aggregate: COUNT, SUM, MIN or MAX.
        relation_name: the head predicate the filter refers to
            (``answer`` in all the paper's examples).
        target: the answer column aggregated — a head-variable name, or
            :data:`STAR` for whole tuples (only meaningful for COUNT).
        op: the comparison against the threshold.
        threshold: the constant bound (the support level).
        assume_nonnegative: SUM is monotone only over non-negative
            values; the caller asserts this domain knowledge (true for
            the paper's weights: purchase totals, web hits).
    """

    aggregate: AggregateFunction
    relation_name: str
    target: str
    op: ComparisonOp
    threshold: Union[int, float]
    assume_nonnegative: bool = True

    def __post_init__(self) -> None:
        if self.aggregate is not AggregateFunction.COUNT and self.target == STAR:
            raise FilterError(
                f"{self.aggregate.value}(*) is not defined; name a column"
            )

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def passes(self, value: Union[int, float]) -> bool:
        """Test one aggregate value against the threshold."""
        return self.op.fn(value, self.threshold)

    def passing_indexes(self, values: Sequence[Union[int, float]]) -> list[int]:
        """Row indexes of a whole aggregate column that pass.

        The batch form of :meth:`passes`: the comparison is inlined per
        operator so a column scan costs one comprehension instead of a
        method call per row — this is the memory engine's threshold
        kernel.
        """
        t = self.threshold
        op = self.op
        if op is ComparisonOp.GE:
            return [i for i, v in enumerate(values) if v >= t]
        if op is ComparisonOp.GT:
            return [i for i, v in enumerate(values) if v > t]
        if op is ComparisonOp.LE:
            return [i for i, v in enumerate(values) if v <= t]
        if op is ComparisonOp.LT:
            return [i for i, v in enumerate(values) if v < t]
        if op is ComparisonOp.EQ:
            return [i for i, v in enumerate(values) if v == t]
        if op is ComparisonOp.NE:
            return [i for i, v in enumerate(values) if v != t]
        fn = op.fn
        return [i for i, v in enumerate(values) if fn(v, t)]

    def test_relation(self, answer: Relation) -> bool:
        """Test the filter against one answer relation (the result of the
        instantiated query for a single parameter assignment) — the
        reference semantics of Section 2."""
        if self.aggregate is AggregateFunction.COUNT:
            if self.target == STAR:
                value: Union[int, float] = len(answer)
            else:
                value = answer.distinct_count(self.target)
            return self.passes(value)
        if len(answer) == 0:
            # SQL: SUM/MIN/MAX of no rows is NULL; NULL compares false.
            return False
        agg = group_aggregate(answer, [], self.aggregate, target=[self.target])
        (value,) = next(iter(agg.tuples))
        return self.passes(value)

    # ------------------------------------------------------------------
    # Monotonicity (Section 5)
    # ------------------------------------------------------------------

    @property
    def is_monotone(self) -> bool:
        """Whether the condition is preserved under supersets.

        * ``COUNT >= t`` / ``COUNT > t`` — more tuples, never a smaller
          count: monotone.
        * ``SUM >= t`` (non-negative values) — adding tuples can only
          grow the sum: monotone, but only under the non-negativity
          assumption.
        * ``MAX >= t`` / ``MAX > t`` — a superset's max is no smaller:
          monotone.
        * ``MIN <= t`` / ``MIN < t`` — a superset's min is no larger:
          monotone.
        * Everything else (upper bounds on COUNT/SUM/MAX, lower bounds
          on MIN, equalities) is not monotone; a-priori pruning would be
          unsound.
        """
        lower_bound = self.op in (ComparisonOp.GE, ComparisonOp.GT)
        upper_bound = self.op in (ComparisonOp.LE, ComparisonOp.LT)
        if self.aggregate is AggregateFunction.COUNT:
            return lower_bound
        if self.aggregate is AggregateFunction.SUM:
            return lower_bound and self.assume_nonnegative
        if self.aggregate is AggregateFunction.MAX:
            return lower_bound
        if self.aggregate is AggregateFunction.MIN:
            return upper_bound
        return False

    @property
    def is_support_condition(self) -> bool:
        """A *support-type* filter: lower bound on COUNT — the class the
        Section 4.2 plan-legality rule treats ("First, we treat only
        filters that involve support")."""
        return self.aggregate is AggregateFunction.COUNT and self.op in (
            ComparisonOp.GE,
            ComparisonOp.GT,
        )

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        if self.target == STAR:
            inner = f"{self.relation_name}(*)"
        else:
            inner = f"{self.relation_name}.{self.target}"
        return (
            f"{self.aggregate.value}({inner}) {self.op.value} {self.threshold}"
        )


_FILTER_RE = re.compile(
    r"""^\s*
    (?P<agg>[A-Za-z]+)\s*\(\s*
        (?P<rel>[A-Za-z_][A-Za-z0-9_]*)\s*
        (?: \.\s*(?P<col>[A-Za-z_][A-Za-z0-9_]*) | \(\s*\*\s*\) )
    \s*\)\s*
    (?P<op><=|>=|!=|<>|==|<|>|=)\s*
    (?P<thr>-?\d+(?:\.\d+)?)
    \s*$""",
    re.VERBOSE,
)

_FLIPPED_RE = re.compile(
    r"""^\s*
    (?P<thr>-?\d+(?:\.\d+)?)\s*
    (?P<op><=|>=|!=|<>|==|<|>|=)\s*
    (?P<agg>[A-Za-z]+)\s*\(\s*
        (?P<rel>[A-Za-z_][A-Za-z0-9_]*)\s*
        (?: \.\s*(?P<col>[A-Za-z_][A-Za-z0-9_]*) | \(\s*\*\s*\) )
    \s*\)
    \s*$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class CompositeFilter:
    """A conjunction of filter conditions (all must pass).

    Section 5 extends the techniques to "any monotone filter condition";
    a conjunction of monotone conditions is itself monotone (if every
    conjunct survives on a set, every conjunct survives on a superset),
    so a-priori pre-filtering remains sound.  All conditions must refer
    to the same answer relation.
    """

    conditions: tuple[FilterCondition, ...]

    def __post_init__(self) -> None:
        if len(self.conditions) < 2:
            raise FilterError(
                "a composite filter needs at least two conditions; use "
                "FilterCondition directly for one"
            )
        names = {c.relation_name for c in self.conditions}
        if len(names) > 1:
            raise FilterError(
                "composite conditions must share an answer relation, "
                f"got {sorted(names)}"
            )

    @property
    def relation_name(self) -> str:
        return self.conditions[0].relation_name

    @property
    def is_monotone(self) -> bool:
        """Monotone iff every conjunct is."""
        return all(c.is_monotone for c in self.conditions)

    @property
    def is_support_condition(self) -> bool:
        """A composite is support-type when some conjunct is (the COUNT
        bound is what drives a-priori pruning estimates)."""
        return any(c.is_support_condition for c in self.conditions)

    def support_threshold(self) -> Union[int, float, None]:
        """The largest COUNT lower bound among the conjuncts (the
        strongest pruning lever), or None when there is none."""
        thresholds = [
            c.threshold for c in self.conditions if c.is_support_condition
        ]
        return max(thresholds) if thresholds else None

    def test_relation(self, answer: Relation) -> bool:
        """All conjuncts must pass on the answer relation."""
        return all(c.test_relation(answer) for c in self.conditions)

    def __str__(self) -> str:
        return " AND ".join(str(c) for c in self.conditions)


#: Anything a flock accepts as its filter.
AnyFilter = Union[FilterCondition, CompositeFilter]


def iter_conditions(condition: AnyFilter) -> tuple[FilterCondition, ...]:
    """The conjuncts of a filter — a singleton for a plain condition."""
    if isinstance(condition, CompositeFilter):
        return condition.conditions
    return (condition,)


def parse_filter(text: str, assume_nonnegative: bool = True) -> AnyFilter:
    """Parse the paper's filter notation.

    Accepts both orders: ``COUNT(answer.B) >= 20`` and the Fig. 1 SQL
    style ``20 <= COUNT(answer.B)``; also ``COUNT(answer(*)) >= 20``.
    Conjunctions of conditions joined by ``AND`` parse to a
    :class:`CompositeFilter`::

        COUNT(answer.B) >= 20 AND SUM(answer.W) >= 100
    """
    parts = re.split(r"\bAND\b", text, flags=re.IGNORECASE)
    if len(parts) > 1:
        conditions = tuple(
            _parse_single_filter(part, assume_nonnegative) for part in parts
        )
        return CompositeFilter(conditions)
    return _parse_single_filter(text, assume_nonnegative)


def _parse_single_filter(
    text: str, assume_nonnegative: bool = True
) -> FilterCondition:
    match = _FILTER_RE.match(text)
    flipped = False
    if match is None:
        match = _FLIPPED_RE.match(text)
        flipped = True
    if match is None:
        raise ParseError(f"cannot parse filter condition: {text!r}", text=text)
    op = ComparisonOp.from_symbol(match.group("op"))
    if flipped:
        op = op.flipped()
    threshold_text = match.group("thr")
    threshold: Union[int, float] = (
        float(threshold_text) if "." in threshold_text else int(threshold_text)
    )
    target = match.group("col") or STAR
    return FilterCondition(
        AggregateFunction.from_name(match.group("agg")),
        match.group("rel"),
        target,
        op,
        threshold,
        assume_nonnegative=assume_nonnegative,
    )


def support_filter(
    threshold: Union[int, float],
    relation_name: str = "answer",
    target: str = STAR,
) -> FilterCondition:
    """The common case: ``COUNT(answer(*)) >= threshold``."""
    return FilterCondition(
        AggregateFunction.COUNT,
        relation_name,
        target,
        ComparisonOp.GE,
        threshold,
    )


def plan_aggregate_specs(condition: AnyFilter, resolve_target):
    """Lower a filter to physical-plan operator inputs: one
    :class:`~repro.engine.ir.AggregateSpec` per conjunct (producing
    ``_agg{i}``) plus the matching ThresholdFilter conditions.

    ``resolve_target(condition)`` maps one conjunct to the answer
    columns its aggregate ranges over, exactly as in
    :func:`surviving_assignments`.
    """
    from ..engine.ir import AggregateSpec

    aggregates = []
    conditions = []
    for index, single in enumerate(iter_conditions(condition)):
        column = f"_agg{index}"
        aggregates.append(
            AggregateSpec(single.aggregate, tuple(resolve_target(single)), column)
        )
        conditions.append((single, column))
    return aggregates, conditions


def surviving_with_aggregates(
    answer: Relation,
    group_by: list[str],
    condition: AnyFilter,
    resolve_target,
    name: str = "ok",
) -> Relation:
    """Like :func:`surviving_assignments`, but keep the aggregate values.

    The result has the ``group_by`` columns plus one ``_agg{i}`` column
    per filter conjunct, holding that conjunct's aggregate value for the
    surviving assignment.  This is what the session result cache stores:
    for a *monotone* conjunct, an assignment surviving threshold *t* with
    recorded value *v* survives any stricter threshold ``t' >= t`` iff
    ``v`` passes it — so the cached relation answers every stricter
    request by re-filtering, with zero base-relation work.  (Assignments
    that *failed* threshold *t* are absent, which is exactly why the
    cached relation is only sound for thresholds at least as strict.)
    """
    survivors: Relation | None = None
    for index, single in enumerate(iter_conditions(condition)):
        column = f"_agg{index}"
        agg = group_aggregate(
            answer,
            group_by,
            single.aggregate,
            target=resolve_target(single),
            result_column=column,
        )
        passed = having(
            agg, single.passes, result_column=column, name=name,
            keep_aggregate=True,
        )
        if survivors is None:
            survivors = passed
        else:
            from ..relational.operators import natural_join

            survivors = natural_join(survivors, passed, name=name)
    assert survivors is not None
    return survivors


def refilter_aggregates(
    cached: Relation,
    group_by: list[str],
    condition: AnyFilter,
    name: str = "ok",
) -> Relation:
    """Re-filter a :func:`surviving_with_aggregates` relation at stricter
    thresholds and project away the aggregate columns.

    ``condition`` must have the same conjunct signatures (aggregate,
    target, comparison direction) as the filter the relation was built
    under, with each conjunct's threshold at least as strict — the
    caller (:mod:`repro.session.cache`) enforces this via
    ``filter_implies``.
    """
    positions = [
        cached.column_position(f"_agg{i}")
        for i in range(len(iter_conditions(condition)))
    ]
    conjuncts = iter_conditions(condition)
    rows = {
        row
        for row in cached.tuples
        if all(c.passes(row[p]) for c, p in zip(conjuncts, positions))
    }
    survivors = Relation(name, cached.columns, rows)
    return survivors.project(group_by, name=name)


def filter_signature(condition: AnyFilter) -> tuple:
    """The threshold-independent shape of a filter: one
    ``(aggregate, target, op)`` triple per conjunct, in order.  Two
    filters with equal signatures differ only in their thresholds."""
    return tuple(
        (c.aggregate.value, c.relation_name, c.target, c.op.value)
        for c in iter_conditions(condition)
    )


def filter_implies(new: AnyFilter, old: AnyFilter) -> bool:
    """Whether every assignment passing ``new`` also passes ``old`` —
    i.e. ``new`` is at least as strict, conjunct by conjunct.

    This is the session cache's **threshold-reuse rule** (Section 5
    monotonicity, applied across queries): a result computed under
    ``old`` contains every assignment that can pass ``new``, so it can
    serve a ``new`` request by re-filtering.  Requires identical
    signatures (same aggregates, targets and comparison directions, in
    order); then per conjunct:

    * lower bounds (``>=``/``>``): ``new.threshold >= old.threshold``;
    * upper bounds (``<=``/``<``): ``new.threshold <= old.threshold``;
    * anything else: thresholds must be equal.
    """
    if filter_signature(new) != filter_signature(old):
        return False
    for n, o in zip(iter_conditions(new), iter_conditions(old)):
        if n.op in (ComparisonOp.GE, ComparisonOp.GT):
            if n.threshold < o.threshold:
                return False
        elif n.op in (ComparisonOp.LE, ComparisonOp.LT):
            if n.threshold > o.threshold:
                return False
        elif n.threshold != o.threshold:
            return False
    return True


def surviving_assignments(
    answer: Relation,
    group_by: list[str],
    condition: AnyFilter,
    resolve_target,
    name: str = "ok",
) -> Relation:
    """GROUP BY ``group_by`` and keep the assignments passing the filter.

    ``resolve_target(condition)`` maps one :class:`FilterCondition` to
    the list of answer columns its aggregate ranges over (callers know
    how head terms were renamed).  For a :class:`CompositeFilter` the
    per-conjunct survivor sets are intersected — sound because a
    conjunction passes exactly when every conjunct does.
    """
    survivors: Relation | None = None
    for single in iter_conditions(condition):
        agg = group_aggregate(
            answer,
            group_by,
            single.aggregate,
            target=resolve_target(single),
            result_column="_agg",
        )
        passed = having(agg, single.passes, result_column="_agg", name=name)
        survivors = (
            passed if survivors is None
            else survivors.intersection(passed, name=name)
        )
    assert survivors is not None
    return survivors
