"""The one-call mining front door.

:func:`mine` wraps the full pipeline a downstream user wants by
default: lint the flock, pick an evaluation strategy appropriate to its
shape, execute, and return the result together with a human-readable
report of what was done.

Strategy selection (``strategy="auto"``):

* non-monotone filter → naive evaluation (nothing else is sound);
* union flock → the Section 3.4 union optimizer;
* single-rule monotone flock → the dynamic evaluator (Section 4.4),
  which needs no cost model and adapts to the data's statistics.

Explicit strategies: ``"naive"``, ``"optimized"`` (static plan search),
``"stats"`` (static search with Section 4.4 statistics gathering),
``"dynamic"``.

Resilience (this module is the policy layer over :mod:`repro.guard`):

* ``budget=ResourceBudget(seconds=5)`` / ``cancel=CancellationToken()``
  bound the whole call — every strategy and backend checkpoints
  cooperatively and aborts with
  :class:`~repro.errors.BudgetExceededError` /
  :class:`~repro.errors.ExecutionCancelled` carrying a partial trace;
* **strategy degradation**: when a fancier strategy fails *before
  producing an answer* — plan construction raises
  :class:`~repro.errors.PlanError` / :class:`~repro.errors.FilterError`,
  or the budget expires mid plan-search — :func:`mine` falls back to
  the next-cheaper sound strategy (ultimately naive) instead of dying,
  and records the downgrade in the :class:`MiningReport`.  A budget
  exhausted during *execution* is not downgraded: re-running a cheaper
  strategy cannot un-spend the budget, and silently retrying would turn
  a hard limit into a soft one;
* **backend degradation**: ``backend="sqlite"`` evaluates on the SQLite
  backend; if SQLite fails (after the backend's own transient-error
  retries) the call falls back to the in-memory engine, again recording
  the downgrade;
* **retry** (``retry=RetryPolicy(...)``): the first rung *below* all of
  the above — a transient fault (see
  :meth:`repro.recovery.RetryPolicy.classify`) re-runs the failing
  step/strategy after a guard-clamped backoff before any downgrade is
  considered, recorded as a ``kind="retry"`` downgrade with its attempt
  count;
* **hung-worker watchdog**: under a wall-clock budget, the parallel
  executor bounds how long a step's morsels may straggle; overdue
  morsels are cancelled and re-run serially, recorded as a
  ``kind="watchdog"`` downgrade;
* **checkpoint–resume** (``checkpoint=path``): plan-based strategies
  persist each completed FILTER step's survivors plus a run manifest
  to a SQLite file; ``resume=run_id`` validates the manifest and
  re-executes only the unfinished steps (see :mod:`repro.recovery`).

The full escalation ladder, cheapest rung first::

    retry step -> salvage failed partitions serially
               -> backend/strategy downgrade -> abort (partial trace)
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..analysis.verification import plan_verification, plan_verification_enabled
from ..engine.ir import StageObservation
from ..engine.parallel import ParallelExecutor, clamp_default_jobs, resolve_jobs
from ..errors import (
    BudgetExceededError,
    EvaluationError,
    ExecutionAborted,
    FilterError,
    PlanError,
)
from ..guard import CancellationToken, ExecutionGuard, GuardLike, ResourceBudget, as_guard
from ..recovery import (
    CheckpointRecorder,
    CheckpointStore,
    RetryPolicy,
    RetrySupervisor,
)
from ..relational.catalog import Database
from ..relational.relation import Relation
from .dynamic import evaluate_flock_dynamic
from .executor import execute_plan
from .flock import QueryFlock
from .lint import LintWarning, lint_flock
from .naive import evaluate_flock
from .optimizer import FlockOptimizer, optimize_union
from .sqlbackend import SQLiteBackend

if TYPE_CHECKING:
    from ..analysis.certify import BranchCertificate, LegalityCertificate


STRATEGIES = ("auto", "naive", "optimized", "stats", "dynamic")

BACKENDS = ("memory", "sqlite")

JOIN_ORDERS = ("greedy", "selinger", "ues")

#: Most- to least-sophisticated machinery; degradation walks rightward.
_STRATEGY_COST_ORDER = ("stats", "optimized", "dynamic", "naive")


@dataclass(frozen=True)
class Downgrade:
    """One recorded rung of the recovery ladder a :func:`mine` call
    descended — including the rungs that *recovered* (``"retry"`` and
    ``"watchdog"`` entries record faults the call absorbed)."""

    kind: str  # "strategy" | "backend" | "parallelism" | "retry" | "watchdog"
    from_name: str
    to_name: str
    reason: str

    def __str__(self) -> str:
        return (
            f"downgrade [{self.kind}] {self.from_name} -> {self.to_name}: "
            f"{self.reason}"
        )


@dataclass(frozen=True)
class MiningReport:
    """Everything :func:`mine` did, for logging and debugging."""

    strategy_requested: str
    strategy_used: str
    seconds: float
    warnings: tuple[LintWarning, ...]
    plan_text: str | None = None
    decision_text: str | None = None
    backend_requested: str = "memory"
    backend_used: str = "memory"
    join_order: str = "greedy"
    #: Whether runtime semi-join filter injection (sideways information
    #: passing from materialized pre-filter steps into later scans) was
    #: enabled for this call, and how many scan rows those filters
    #: removed before any join ran.
    runtime_filters: bool = False
    runtime_filter_rows_pruned: int = 0
    #: Per-join-stage observations (System-R estimate, guaranteed UES
    #: bound, actual output rows) from the in-memory engine —
    #: :class:`repro.engine.ir.StageObservation` tuples.  Empty when the
    #: run had no instrumented stages (naive/SQLite/cache paths).
    stage_rows: tuple = ()
    #: Worker count the call asked for (``parallelism=`` argument or the
    #: ``REPRO_JOBS`` environment default) and what actually ran: the
    #: requested count when at least one step executed partitioned, 1
    #: when everything ran serially (small inputs, no partition column,
    #: or a recorded parallelism downgrade).
    parallelism_requested: int = 1
    parallelism_used: int = 1
    #: Largest single-partition footprint the parallel executor saw —
    #: the encoded (8 bytes/column) size of the biggest morsel's answer.
    #: Zero when nothing ran partitioned.  This is the number to watch
    #: when sizing worker memory: partitions are processed whole, so the
    #: peak morsel bounds a worker's working set.
    peak_partition_bytes: int = 0
    downgrades: tuple[Downgrade, ...] = ()
    #: Session-cache accounting (all zero without a session).  An exact
    #: hit sets ``cache_hits=1`` and ``strategy_used="cache"`` — the
    #: answer came from re-filtering a cached result, with zero
    #: base-relation joins.  ``cache_step_hits`` counts pre-filter plan
    #: steps served from the cache during a live evaluation, and
    #: ``rows_saved`` the answer tuples those served results did not
    #: have to recompute.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_step_hits: int = 0
    rows_saved: int = 0
    #: The legality certificate of the plan that produced the answer
    #: (optimized/stats strategies with plan verification on): per-step
    #: safety reports plus containment witnesses, re-checkable with
    #: :func:`repro.analysis.verify_certificate`.
    certificate: Optional["LegalityCertificate"] = None
    #: The dynamic strategy's per-FILTER-decision certificates (one
    #: :class:`repro.analysis.certify.BranchCertificate` per filter
    #: actually applied mid-run), when plan verification is on.
    decision_certificates: tuple["BranchCertificate", ...] = ()
    #: Checkpoint accounting (``checkpoint=`` calls only): the durable
    #: run id a later ``resume=`` can pick up, how many plan steps were
    #: served from a previous run's checkpoints, and how many this call
    #: made durable.
    run_id: Optional[str] = None
    steps_resumed: int = 0
    steps_checkpointed: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.downgrades)

    # -- wire format ---------------------------------------------------
    #
    # The serve layer ships reports over HTTP as JSON.  Certificates are
    # *not* serialized (they hold query/plan objects and are re-checkable
    # only in-process); a deserialized report carries ``certificate=None``
    # and no decision certificates.  Everything else round-trips exactly.

    def to_dict(self) -> dict:
        """A JSON-able dict of this report (certificates omitted)."""
        return {
            "strategy_requested": self.strategy_requested,
            "strategy_used": self.strategy_used,
            "seconds": self.seconds,
            "warnings": [
                {
                    "code": w.code.value,
                    "message": w.message,
                    "rule_index": w.rule_index,
                    "severity": w.severity.value,
                }
                for w in self.warnings
            ],
            "plan_text": self.plan_text,
            "decision_text": self.decision_text,
            "backend_requested": self.backend_requested,
            "backend_used": self.backend_used,
            "join_order": self.join_order,
            "runtime_filters": self.runtime_filters,
            "runtime_filter_rows_pruned": self.runtime_filter_rows_pruned,
            "stage_rows": [o.to_dict() for o in self.stage_rows],
            "parallelism_requested": self.parallelism_requested,
            "parallelism_used": self.parallelism_used,
            "peak_partition_bytes": self.peak_partition_bytes,
            "downgrades": [
                {
                    "kind": d.kind,
                    "from_name": d.from_name,
                    "to_name": d.to_name,
                    "reason": d.reason,
                }
                for d in self.downgrades
            ],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_step_hits": self.cache_step_hits,
            "rows_saved": self.rows_saved,
            "run_id": self.run_id,
            "steps_resumed": self.steps_resumed,
            "steps_checkpointed": self.steps_checkpointed,
        }

    def to_json(self) -> str:
        """This report as a JSON string (see :meth:`to_dict`)."""
        import json

        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "MiningReport":
        """Rebuild a report from :meth:`to_dict` output."""
        from ..analysis.diagnostics import Severity
        from .lint import LintCode, LintWarning

        return cls(
            strategy_requested=data["strategy_requested"],
            strategy_used=data["strategy_used"],
            seconds=float(data["seconds"]),
            warnings=tuple(
                LintWarning(
                    code=LintCode(w["code"]),
                    message=w["message"],
                    rule_index=w.get("rule_index"),
                    severity=Severity(w.get("severity", "warning")),
                )
                for w in data.get("warnings", ())
            ),
            plan_text=data.get("plan_text"),
            decision_text=data.get("decision_text"),
            backend_requested=data.get("backend_requested", "memory"),
            backend_used=data.get("backend_used", "memory"),
            join_order=data.get("join_order", "greedy"),
            runtime_filters=bool(data.get("runtime_filters", False)),
            runtime_filter_rows_pruned=int(
                data.get("runtime_filter_rows_pruned", 0)
            ),
            stage_rows=tuple(
                StageObservation.from_dict(o)
                for o in data.get("stage_rows", ())
            ),
            parallelism_requested=int(data.get("parallelism_requested", 1)),
            parallelism_used=int(data.get("parallelism_used", 1)),
            peak_partition_bytes=int(data.get("peak_partition_bytes", 0)),
            downgrades=tuple(
                Downgrade(
                    kind=d["kind"],
                    from_name=d["from_name"],
                    to_name=d["to_name"],
                    reason=d["reason"],
                )
                for d in data.get("downgrades", ())
            ),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            cache_step_hits=int(data.get("cache_step_hits", 0)),
            rows_saved=int(data.get("rows_saved", 0)),
            run_id=data.get("run_id"),
            steps_resumed=int(data.get("steps_resumed", 0)),
            steps_checkpointed=int(data.get("steps_checkpointed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "MiningReport":
        """Rebuild a report from :meth:`to_json` output."""
        import json

        return cls.from_dict(json.loads(text))

    def __str__(self) -> str:
        lines = [
            f"strategy: {self.strategy_used} "
            f"(requested {self.strategy_requested}), "
            f"{self.seconds * 1e3:.1f} ms"
        ]
        if self.cache_hits or self.cache_misses or self.cache_step_hits:
            lines.append(
                f"cache: {self.cache_hits} exact, "
                f"{self.cache_step_hits} step hits, "
                f"{self.cache_misses} misses, "
                f"{self.rows_saved} rows saved"
            )
        if self.backend_used != "memory" or self.backend_requested != "memory":
            lines.append(
                f"backend: {self.backend_used} "
                f"(requested {self.backend_requested})"
            )
        if self.join_order != "greedy":
            lines.append(f"join order: {self.join_order}")
        if self.runtime_filters:
            lines.append(
                "runtime filters: on "
                f"({self.runtime_filter_rows_pruned} scan row(s) pruned)"
            )
        if self.stage_rows:
            lines.append("stages (estimate / bound / actual):")
            for obs in self.stage_rows:
                bound_text = (
                    f"{obs.bound:,.0f}" if obs.bound is not None else "-"
                )
                lines.append(
                    f"  {obs.node}: ~{obs.estimated:,.0f} / "
                    f"<={bound_text} / {obs.actual}"
                )
        if self.parallelism_requested != 1 or self.parallelism_used != 1:
            lines.append(
                f"parallelism: {self.parallelism_used} jobs "
                f"(requested {self.parallelism_requested})"
            )
        if self.peak_partition_bytes:
            lines.append(
                f"peak partition: {self.peak_partition_bytes:,} B encoded"
            )
        if self.run_id is not None:
            lines.append(
                f"checkpoint run: {self.run_id} "
                f"({self.steps_resumed} step(s) resumed, "
                f"{self.steps_checkpointed} checkpointed)"
            )
        for downgrade in self.downgrades:
            lines.append(str(downgrade))
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        if self.plan_text:
            lines.append("plan:")
            lines.append(self.plan_text)
        if self.decision_text:
            lines.append("decisions:")
            lines.append(self.decision_text)
        return "\n".join(lines)


def _choose_strategy(flock: QueryFlock) -> str:
    if not flock.filter.is_monotone:
        return "naive"
    if flock.is_union:
        return "optimized"
    return "dynamic"


def _strategy_sound(flock: QueryFlock, strategy: str) -> bool:
    """Whether ``strategy`` can produce a correct answer for ``flock``."""
    if strategy == "naive":
        return True
    if not flock.filter.is_monotone:
        return False  # pruning strategies are unsound
    if strategy == "dynamic":
        return not flock.is_union
    return True  # optimized / stats handle unions via optimize_union


def _next_cheaper(flock: QueryFlock, strategy: str) -> str | None:
    """The next-cheaper *sound* strategy after ``strategy``, or None."""
    try:
        index = _STRATEGY_COST_ORDER.index(strategy)
    except ValueError:
        return None
    for candidate in _STRATEGY_COST_ORDER[index + 1:]:
        if _strategy_sound(flock, candidate):
            return candidate
    return None


@dataclass
class _Attempt:
    """Mutable scratch state for one mine() call."""

    relation: Relation | None = None
    plan_text: str | None = None
    decision_text: str | None = None
    downgrades: list[Downgrade] = field(default_factory=list)
    backend_used: str = "memory"
    certificate: Optional["LegalityCertificate"] = None
    decision_certificates: tuple["BranchCertificate", ...] = ()
    recorder: Optional[CheckpointRecorder] = None
    stage_rows: tuple = ()
    runtime_filter_rows_pruned: int = 0


def _certified(flock: QueryFlock, plan):
    """The plan's legality certificate, verified, when the ambient
    plan-verification switch is on (else ``None``)."""
    if not plan_verification_enabled():
        return None
    from ..analysis.certify import certify_plan, verify_certificate

    certificate = certify_plan(flock, plan, witnesses=True)
    certificate.raise_for_errors()
    report = verify_certificate(certificate)
    if not report.ok:
        details = "; ".join(str(d) for d in report.errors)
        raise PlanError(f"plan certificate failed re-validation: {details}")
    return certificate


def _build_plan(
    db: Database,
    flock: QueryFlock,
    strategy: str,
    guard: ExecutionGuard | None,
    sink=None,
):
    """Plan construction — the 'mid-search' phase degradation watches.

    Returns ``(plan, certificate)``; the certificate carries per-step
    safety reports and containment witnesses (see
    :mod:`repro.analysis.certify`).
    """
    if flock.is_union:
        plan = optimize_union(db, flock, guard=guard)
        return plan, _certified(flock, plan)
    optimizer = FlockOptimizer(
        db, flock, gather_statistics=(strategy == "stats"), guard=guard,
        sink=sink,
    )
    scored = optimizer.best_plan()
    return scored.plan, scored.certificate


def _run_strategy(
    db: Database,
    flock: QueryFlock,
    strategy: str,
    guard: ExecutionGuard | None,
    backend: str,
    attempt: _Attempt,
    sink=None,
    join_order: str = "greedy",
    parallel=None,
    supervisor: RetrySupervisor | None = None,
    checkpoint_store: CheckpointStore | None = None,
    run_id: str | None = None,
    resume: str | None = None,
    runtime_filters: bool = False,
) -> None:
    """Execute one strategy, filling ``attempt``.

    Raises whatever the strategy raises; the caller decides whether a
    failure degrades or propagates.

    ``sink`` is the session's cache side-channel: in-memory strategies
    serve pre-filter steps from it and publish what they materialize.
    The SQLite paths run entirely inside the SQL engine and do not
    participate (their *fallbacks* do — a backend downgrade lands on
    the instrumented in-memory code).

    ``parallel`` is the call's shared
    :class:`~repro.engine.parallel.ParallelExecutor` (or None); every
    strategy and both backends thread it through to their step
    execution.

    ``supervisor`` threads the retry rung through the evaluation: the
    plan-based strategies retry per FILTER step (inside
    :func:`~repro.flocks.executor.execute_step`), the monolithic
    strategies (naive/dynamic) retry the whole strategy body — their
    evaluation is deterministic, so a re-run after a transient fault is
    sound.  Plan *search* is supervised the same way.

    ``checkpoint_store``/``run_id``/``resume`` arm step checkpointing
    for the plan-based strategies (validated upstream in :func:`mine`):
    the recorder built here lands on ``attempt.recorder`` for the
    report's accounting.
    """

    def supervised(fn, site: str):
        if supervisor is None:
            return fn()
        return supervisor.run(fn, site=site)

    if strategy == "naive":
        if backend == "sqlite":
            attempt.relation = _on_sqlite(
                db, attempt, guard,
                lambda be: be.evaluate_flock(
                    flock, guard=guard, order_strategy=join_order,
                    parallel=parallel,
                ),
                fallback=lambda: supervised(
                    lambda: evaluate_flock(
                        db, flock, guard=guard, sink=sink,
                        order_strategy=join_order, parallel=parallel,
                    ),
                    "strategy:naive",
                ),
            )
        else:
            attempt.relation = supervised(
                lambda: evaluate_flock(
                    db, flock, guard=guard, sink=sink,
                    order_strategy=join_order, parallel=parallel,
                ),
                "strategy:naive",
            )
    elif strategy == "dynamic":
        # The dynamic evaluator interleaves planning and execution in
        # the in-memory engine; SQLite cannot host it.
        if backend == "sqlite":
            attempt.downgrades.append(
                Downgrade(
                    "backend", "sqlite", "memory",
                    "dynamic strategy runs in the in-memory engine",
                )
            )
            attempt.backend_used = "memory"
        result, trace = supervised(
            lambda: evaluate_flock_dynamic(
                db, flock, guard=guard, sink=sink, order_strategy=join_order,
                parallel=parallel,
            ),
            "strategy:dynamic",
        )
        attempt.relation = result.relation
        attempt.stage_rows = tuple(result.stage_rows)
        attempt.runtime_filter_rows_pruned = result.runtime_filter_rows_pruned
        attempt.decision_text = str(trace)
        attempt.decision_certificates = trace.certificates
    elif strategy in ("optimized", "stats"):
        # Phase 1 — plan search.  PlanError/FilterError *and* budget
        # exhaustion here degrade: no answer work has been lost yet.
        plan, attempt.certificate = supervised(
            lambda: _build_plan(db, flock, strategy, guard, sink=sink),
            "plan-search",
        )
        attempt.plan_text = plan.render(flock)
        recorder = None
        if checkpoint_store is not None:
            recorder = checkpoint_store.recorder(
                flock, plan, db, join_order=join_order,
                run_id=run_id, resume=resume,
            )
            attempt.recorder = recorder
        # Phase 2 — execution.  Only backend failures degrade from here;
        # budget/cancellation aborts propagate with their partial trace.
        if backend == "sqlite":
            attempt.relation = _on_sqlite(
                db, attempt, guard,
                lambda be: be.execute_plan(
                    flock, plan, guard=guard, order_strategy=join_order,
                    parallel=parallel, runtime_filters=runtime_filters,
                ),
                fallback=lambda: execute_plan(
                    db, flock, plan, validate=False, guard=guard, sink=sink,
                    order_strategy=join_order, parallel=parallel,
                    supervisor=supervisor, runtime_filters=runtime_filters,
                ).relation,
            )
        else:
            result = execute_plan(
                db, flock, plan, validate=False, guard=guard, sink=sink,
                order_strategy=join_order, parallel=parallel,
                supervisor=supervisor, recorder=recorder,
                runtime_filters=runtime_filters,
            )
            attempt.relation = result.relation
            attempt.stage_rows = tuple(result.stage_rows)
            attempt.runtime_filter_rows_pruned = (
                result.runtime_filter_rows_pruned
            )
    else:  # pragma: no cover - STRATEGIES guard upstream
        raise AssertionError(strategy)


def _on_sqlite(
    db: Database,
    attempt: _Attempt,
    guard: ExecutionGuard | None,
    action,
    fallback,
) -> Relation:
    """Run ``action`` against a fresh SQLite backend; on a (post-retry)
    backend failure, degrade to the in-memory ``fallback``.

    Guard aborts (budget/cancellation) are *not* degraded — they are
    user-requested limits, not backend faults.
    """
    try:
        with SQLiteBackend(db) as backend:
            attempt.backend_used = "sqlite"
            return action(backend)
    except ExecutionAborted:
        raise
    except EvaluationError as error:
        attempt.downgrades.append(
            Downgrade("backend", "sqlite", "memory", str(error).split("\n")[0])
        )
        attempt.backend_used = "memory"
        return fallback()


def mine(
    db: Database,
    flock: QueryFlock,
    strategy: str = "auto",
    lint: bool = True,
    budget: ResourceBudget | None = None,
    cancel: CancellationToken | None = None,
    guard: GuardLike = None,
    backend: str = "memory",
    session=None,
    join_order: str = "greedy",
    runtime_filters: bool | None = None,
    verify_plans: bool | None = None,
    parallelism: int | None = None,
    retry: RetryPolicy | None = None,
    checkpoint: "CheckpointStore | str | None" = None,
    run_id: str | None = None,
    resume: str | None = None,
) -> tuple[Relation, MiningReport]:
    """Evaluate a flock end to end; returns (result relation, report).

    Args:
        strategy: one of :data:`STRATEGIES`; ``"auto"`` picks by flock
            shape.
        verify_plans: run the :mod:`repro.analysis` verifiers on every
            plan this call uses — the IR schema checker on every lowered
            physical plan (including the dynamic strategy's re-planned
            suffixes), and certificate re-validation on every FILTER-step
            plan.  ``None`` (default) inherits the ambient switch, which
            the test suite turns on globally; pass ``True``/``False`` to
            force it for this call.
        budget: optional :class:`~repro.guard.ResourceBudget`; the clock
            starts when :func:`mine` is entered and spans every fallback
            attempt — degradation never extends the budget.
        cancel: optional :class:`~repro.guard.CancellationToken`.
        guard: a pre-started :class:`~repro.guard.ExecutionGuard` to
            share with other work; mutually exclusive with
            ``budget``/``cancel``.
        backend: ``"memory"`` (default) or ``"sqlite"``.
        join_order: the join-ordering strategy plans are lowered with —
            ``"greedy"`` (default), ``"selinger"`` (the System-R style
            dynamic-programming orderer), or ``"ues"`` (the pessimistic
            orderer: stages are ranked by *guaranteed* output upper
            bounds built from exact distinct counts and max per-value
            frequencies, never by independence estimates — the robust
            choice on skewed, correlated data).
        runtime_filters: inject semi-join filters from materialized
            pre-filter steps into later scans (sideways information
            passing) on the plan-based strategies.  ``None`` (default)
            enables them exactly when ``join_order="ues"`` — the
            pessimistic mode both consumes the survivor-key counts in
            its bounds and profits most from the pruning; pass
            ``True``/``False`` to force either way.  Survivor counts
            and identical results are guaranteed regardless: a filter
            only pre-applies a join the plan performs anyway.
        parallelism: worker count for partitioned step execution
            (``--jobs`` on the CLI).  ``None`` reads the ``REPRO_JOBS``
            environment variable (default 1 = serial).  Results are
            bit-identical to serial execution for any value; worker
            failures degrade back to serial with a recorded
            ``parallelism`` downgrade.  See
            :mod:`repro.engine.parallel`.
        session: optional :class:`repro.session.MiningSession` whose
            result cache participates: an exact hit (alpha-equivalent
            flock, stricter-or-equal thresholds) returns the cached
            answer re-filtered — ``strategy_used == "cache"``, zero
            base-relation joins — and a miss threads the session's sink
            through the evaluation so the result (and intermediate
            materializations) warm the cache.  ``session.db`` must be
            the ``db`` passed here.
        retry: a :class:`~repro.recovery.RetryPolicy` governing the
            transient-fault retry rung.  ``None`` uses the default
            policy (3 attempts, 50 ms base backoff); pass
            ``RetryPolicy(max_attempts=1)`` to disable retries.
        checkpoint: a :class:`~repro.recovery.CheckpointStore` (or a
            path to one) that makes every completed FILTER step
            durable.  Requires a plan-based strategy — ``"auto"`` is
            coerced to ``"optimized"`` for a monotone flock — and the
            in-memory backend.  The report's ``run_id`` identifies the
            run for a later resume.
        run_id: explicit run id for a fresh checkpointed run (default:
            generated).
        resume: the run id of a previously checkpointed run to resume.
            The stored manifest is validated (same flock, same plan,
            same base-relation cardinalities —
            :class:`~repro.errors.ResumeError` otherwise) and only the
            steps it has not completed re-execute.  Strategy
            degradation is disabled: a different strategy could not
            honour the manifest's plan.

    Raises :class:`FilterError` for an unknown strategy, or when a
    pruning strategy is requested for a non-monotone filter and no
    sound fallback exists; :class:`~repro.errors.BudgetExceededError` /
    :class:`~repro.errors.ExecutionCancelled` when the guard trips
    during execution.
    """
    if strategy not in STRATEGIES:
        raise FilterError(
            f"unknown strategy {strategy!r}; choose one of {STRATEGIES}"
        )
    if backend not in BACKENDS:
        raise EvaluationError(
            f"unknown backend {backend!r}; choose one of {BACKENDS}"
        )
    if join_order not in JOIN_ORDERS:
        raise ValueError(
            f"unknown order strategy {join_order!r}; "
            "use 'greedy', 'selinger' or 'ues'"
        )
    if guard is not None and (budget is not None or cancel is not None):
        raise ValueError("pass either guard= or budget=/cancel=, not both")
    if session is not None and session.db is not db:
        raise ValueError("session.db and db must be the same Database")
    if resume is not None and checkpoint is None:
        raise ValueError("resume= requires checkpoint=")
    if guard is not None:
        live_guard = as_guard(guard)
    elif budget is not None or cancel is not None:
        live_guard = ExecutionGuard(budget=budget, cancel=cancel)
    else:
        live_guard = None

    requested_jobs = resolve_jobs(parallelism)
    jobs = requested_jobs
    clamp_reason: str | None = None
    if parallelism is None:
        # Only the env/default path is clamped; an explicit
        # parallelism= argument is honored as given.
        jobs, clamp_reason = clamp_default_jobs(requested_jobs)
    rf = (join_order == "ues") if runtime_filters is None else bool(
        runtime_filters
    )
    warnings = tuple(lint_flock(flock)) if lint else ()
    used = _choose_strategy(flock) if strategy == "auto" else strategy

    if checkpoint is not None:
        # Checkpointing needs a *plan* whose steps can be replayed:
        # only the plan-based strategies have one, and only the
        # in-memory executor threads the recorder through.
        if backend == "sqlite":
            raise ValueError(
                "checkpoint= requires the in-memory backend; the SQLite "
                "path runs as one SQL script with no step boundary to "
                "checkpoint at"
            )
        if strategy == "auto":
            if not flock.filter.is_monotone:
                raise FilterError(
                    "checkpoint= requires a plan-based strategy "
                    "(optimized/stats), but a non-monotone filter can "
                    "only be evaluated naively"
                )
            used = "optimized"
        elif used not in ("optimized", "stats"):
            raise ValueError(
                f"checkpoint= requires a plan-based strategy "
                f"(optimized/stats), not {used!r}"
            )

    started = time.perf_counter()

    sink = None
    cache_misses = 0
    if session is not None:
        hit = session.lookup(flock)
        if hit is not None:
            entry, relation = hit
            if live_guard is not None:
                # Guards apply to cached answers too: the budget clock
                # and cancellation are checked, and an answer-row cap
                # rejects an oversized cached answer like a live one.
                live_guard.checkpoint(rows=len(relation), node="cache hit")
                live_guard.check_answer(len(relation))
            report = MiningReport(
                strategy_requested=strategy,
                strategy_used="cache",
                seconds=time.perf_counter() - started,
                warnings=warnings,
                backend_requested=backend,
                backend_used="memory",
                parallelism_requested=requested_jobs,
                cache_hits=1,
                rows_saved=entry.source_rows,
            )
            return relation, report
        cache_misses = 1
        sink = session.sink(flock)

    attempt = _Attempt(backend_used=backend)
    if clamp_reason is not None:
        attempt.downgrades.append(
            Downgrade(
                "parallelism",
                f"{requested_jobs} jobs",
                f"{jobs} jobs",
                clamp_reason,
            )
        )
    parallel = (
        ParallelExecutor(jobs, db, guard=live_guard) if jobs > 1 else None
    )
    supervisor = RetrySupervisor(
        policy=retry if retry is not None else RetryPolicy(),
        guard=live_guard,
    )
    own_store = isinstance(checkpoint, str)
    store: CheckpointStore | None = (
        CheckpointStore(checkpoint) if isinstance(checkpoint, str)
        else checkpoint
    )

    scope = (
        nullcontext() if verify_plans is None
        else plan_verification(verify_plans)
    )
    try:
        with scope:
            while True:
                try:
                    _run_strategy(
                        db, flock, used, live_guard, backend, attempt,
                        sink=sink, join_order=join_order, parallel=parallel,
                        supervisor=supervisor, checkpoint_store=store,
                        run_id=run_id, resume=resume, runtime_filters=rf,
                    )
                    break
                except (PlanError, FilterError, BudgetExceededError) as error:
                    if isinstance(error, BudgetExceededError) and not (
                        used in ("optimized", "stats")
                        and attempt.plan_text is None
                    ):
                        # The budget died during execution, not mid
                        # plan-search — a cheaper strategy cannot recover
                        # spent budget.
                        raise
                    if resume is not None:
                        # A cheaper strategy would not execute the
                        # manifest's plan; resuming onto it would splice
                        # checkpoints into a different evaluation.
                        raise
                    fallback = _next_cheaper(flock, used)
                    if fallback is None:
                        raise
                    attempt.downgrades.append(
                        Downgrade(
                            "strategy", used, fallback,
                            str(error).split("\n")[0],
                        )
                    )
                    used = fallback
                    attempt.plan_text = None
                    attempt.decision_text = None
    finally:
        if parallel is not None:
            parallel.close()
        if own_store and store is not None:
            store.close()

    for event in supervisor.events:
        attempt.downgrades.append(
            Downgrade(
                "retry",
                event.site,
                "recovered" if event.recovered else "exhausted",
                f"{event.attempts} attempt(s)"
                + (f"; last error: {event.error}" if event.error else ""),
            )
        )
    if parallel is not None:
        for event in parallel.watchdog_events:
            attempt.downgrades.append(
                Downgrade(
                    "watchdog", f"{jobs} jobs", "serial salvage", event
                )
            )
        for reason in parallel.downgrades:
            attempt.downgrades.append(
                Downgrade("parallelism", f"{jobs} jobs", "serial", reason)
            )
    parallelism_used = (
        jobs if parallel is not None and parallel.ran_parallel else 1
    )

    assert attempt.relation is not None
    if live_guard is not None:
        live_guard.check_answer(len(attempt.relation))

    seconds = time.perf_counter() - started
    report = MiningReport(
        strategy_requested=strategy,
        strategy_used=used,
        seconds=seconds,
        warnings=warnings,
        plan_text=attempt.plan_text,
        decision_text=attempt.decision_text,
        backend_requested=backend,
        backend_used=attempt.backend_used,
        join_order=join_order,
        runtime_filters=rf,
        runtime_filter_rows_pruned=attempt.runtime_filter_rows_pruned,
        stage_rows=attempt.stage_rows,
        parallelism_requested=requested_jobs,
        parallelism_used=parallelism_used,
        peak_partition_bytes=(
            parallel.peak_partition_bytes if parallel is not None else 0
        ),
        downgrades=tuple(attempt.downgrades),
        cache_misses=cache_misses,
        cache_step_hits=sink.step_hits if sink is not None else 0,
        rows_saved=sink.rows_saved if sink is not None else 0,
        certificate=attempt.certificate,
        decision_certificates=attempt.decision_certificates,
        run_id=(
            attempt.recorder.run_id if attempt.recorder is not None else None
        ),
        steps_resumed=(
            attempt.recorder.steps_resumed
            if attempt.recorder is not None else 0
        ),
        steps_checkpointed=(
            attempt.recorder.steps_checkpointed
            if attempt.recorder is not None else 0
        ),
    )
    return attempt.relation, report
