"""The one-call mining front door.

:func:`mine` wraps the full pipeline a downstream user wants by
default: lint the flock, pick an evaluation strategy appropriate to its
shape, execute, and return the result together with a human-readable
report of what was done.

Strategy selection (``strategy="auto"``):

* non-monotone filter → naive evaluation (nothing else is sound);
* union flock → the Section 3.4 union optimizer;
* single-rule monotone flock → the dynamic evaluator (Section 4.4),
  which needs no cost model and adapts to the data's statistics.

Explicit strategies: ``"naive"``, ``"optimized"`` (static plan search),
``"stats"`` (static search with Section 4.4 statistics gathering),
``"dynamic"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import FilterError
from ..relational.catalog import Database
from ..relational.relation import Relation
from .dynamic import evaluate_flock_dynamic
from .executor import execute_plan
from .flock import QueryFlock
from .lint import LintWarning, lint_flock
from .naive import evaluate_flock
from .optimizer import FlockOptimizer, optimize_union
from .result import FlockResult


STRATEGIES = ("auto", "naive", "optimized", "stats", "dynamic")


@dataclass(frozen=True)
class MiningReport:
    """Everything :func:`mine` did, for logging and debugging."""

    strategy_requested: str
    strategy_used: str
    seconds: float
    warnings: tuple[LintWarning, ...]
    plan_text: str | None = None
    decision_text: str | None = None

    def __str__(self) -> str:
        lines = [
            f"strategy: {self.strategy_used} "
            f"(requested {self.strategy_requested}), "
            f"{self.seconds * 1e3:.1f} ms"
        ]
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        if self.plan_text:
            lines.append("plan:")
            lines.append(self.plan_text)
        if self.decision_text:
            lines.append("decisions:")
            lines.append(self.decision_text)
        return "\n".join(lines)


def _choose_strategy(flock: QueryFlock) -> str:
    if not flock.filter.is_monotone:
        return "naive"
    if flock.is_union:
        return "optimized"
    return "dynamic"


def mine(
    db: Database,
    flock: QueryFlock,
    strategy: str = "auto",
    lint: bool = True,
) -> tuple[Relation, MiningReport]:
    """Evaluate a flock end to end; returns (result relation, report).

    Raises :class:`FilterError` for an unknown strategy, or when a
    pruning strategy is requested for a non-monotone filter.
    """
    if strategy not in STRATEGIES:
        raise FilterError(
            f"unknown strategy {strategy!r}; choose one of {STRATEGIES}"
        )
    warnings = tuple(lint_flock(flock)) if lint else ()
    used = _choose_strategy(flock) if strategy == "auto" else strategy

    plan_text: str | None = None
    decision_text: str | None = None
    started = time.perf_counter()

    if used == "naive":
        relation = evaluate_flock(db, flock)
    elif used == "dynamic":
        result, trace = evaluate_flock_dynamic(db, flock)
        relation = result.relation
        decision_text = str(trace)
    elif used in ("optimized", "stats"):
        if flock.is_union:
            plan = optimize_union(db, flock)
        else:
            optimizer = FlockOptimizer(
                db, flock, gather_statistics=(used == "stats")
            )
            plan = optimizer.best_plan().plan
        plan_text = plan.render(flock)
        relation = execute_plan(db, flock, plan, validate=False).relation
    else:  # pragma: no cover - STRATEGIES guard above
        raise AssertionError(used)

    seconds = time.perf_counter() - started
    report = MiningReport(
        strategy_requested=strategy,
        strategy_used=used,
        seconds=seconds,
        warnings=warnings,
        plan_text=plan_text,
        decision_text=decision_text,
    )
    return relation, report
