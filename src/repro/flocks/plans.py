"""Query plans: sequences of FILTER steps (Sections 4.1–4.2).

The paper's plan notation is::

    R(P) := FILTER(P, Q, C)

— create relation R holding every assignment of the parameters P for
which the result of query Q satisfies condition C.  A plan is a sequence
of such steps; later steps may use the relations earlier steps defined
as extra subgoals.

:func:`validate_plan` enforces the paper's **Rule for Generating Query
Plans for Conjunctive Query Flocks with Support-Type Filter Conditions**
(Section 4.2):

1. every step uses the same filter condition as the original flock
   (structural here: steps carry no filter of their own — the executor
   applies the flock's);
2. every step defines a uniquely named relation;
3. every step is the original query, plus zero or more subgoals copied
   literally from the left sides of previous steps, minus zero or more
   original subgoals — and the result must be safe;
4. the final step deletes no original subgoal.

Union flocks extend the rule branch-wise per Section 3.4: a step over a
union is a union of per-branch derivations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import PlanError
from ..datalog.atoms import RelationalAtom
from ..datalog.query import FlockQuery, UnionQuery, as_union
from ..datalog.subqueries import SubqueryCandidate, UnionSubqueryCandidate
from ..datalog.terms import Parameter
from .flock import QueryFlock


@dataclass(frozen=True)
class FilterStep:
    """One plan step: ``result_name(parameters) := FILTER(parameters,
    query, <flock filter>)``."""

    result_name: str
    parameters: tuple[Parameter, ...]
    query: FlockQuery

    def __post_init__(self) -> None:
        if not self.result_name:
            raise PlanError("a filter step needs a result relation name")
        declared = frozenset(self.parameters)
        actual = as_union(self.query).parameters()
        if declared != actual:
            raise PlanError(
                f"step {self.result_name}: declared parameters "
                f"{sorted(str(p) for p in declared)} != parameters of the "
                f"query {sorted(str(p) for p in actual)}"
            )

    @property
    def ok_atom(self) -> RelationalAtom:
        """The subgoal later steps splice in — the left side of the
        assignment, copied literally (Section 4.2, Example 4.2)."""
        return RelationalAtom(self.result_name, tuple(self.parameters))

    @property
    def parameter_columns(self) -> tuple[str, ...]:
        return tuple(str(p) for p in self.parameters)

    def render(self, filter_text: str) -> str:
        params = ", ".join(str(p) for p in self.parameters)
        if len(self.parameters) > 1:
            params = f"({params})"
        query_text = "\n    ".join(str(self.query).splitlines())
        return (
            f"{self.result_name}({', '.join(str(p) for p in self.parameters)})"
            f" := FILTER({params},\n    {query_text},\n    {filter_text}\n)"
        )


@dataclass(frozen=True)
class QueryPlan:
    """An ordered sequence of FILTER steps; the last step's result is the
    flock result."""

    steps: tuple[FilterStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise PlanError("a plan needs at least one step")

    @property
    def final_step(self) -> FilterStep:
        return self.steps[-1]

    @property
    def prefilter_steps(self) -> tuple[FilterStep, ...]:
        return self.steps[:-1]

    def step_names(self) -> list[str]:
        return [s.result_name for s in self.steps]

    def render(self, flock: QueryFlock) -> str:
        """The Fig. 5 textual form of the plan."""
        filter_text = str(flock.filter)
        return ";\n".join(s.render(filter_text) for s in self.steps) + ";"

    def __len__(self) -> int:
        return len(self.steps)


# ----------------------------------------------------------------------
# Legality (Section 4.2)
# ----------------------------------------------------------------------


def validate_plan(flock: QueryFlock, plan: QueryPlan) -> None:
    """Enforce the Section 4.2 legality rule; raise :class:`PlanError`
    (or :class:`~repro.errors.FilterError` for a non-monotone filter with
    pre-filter steps) on any violation.

    Structural validation only: this is
    :func:`repro.analysis.certify.certify_plan` with the containment
    witness search turned off — plan builders call it in tight loops and
    are legal by construction.  Use :func:`~repro.analysis.certify_plan`
    directly when the full certificate (safety reports plus containment
    witnesses per step) is wanted.
    """
    from ..analysis.certify import certify_plan

    certify_plan(flock, plan, witnesses=False).raise_for_errors()


# ----------------------------------------------------------------------
# Plan builders
# ----------------------------------------------------------------------


def single_step_plan(flock: QueryFlock, name: str = "ok") -> QueryPlan:
    """The trivial plan: one FILTER step that is the whole flock —
    Section 4.2's 'original query flock expressed as a single filter
    step'.  This is the naive baseline in plan form."""
    return QueryPlan(
        (FilterStep(name, tuple(flock.parameters), flock.query),)
    )


def plan_from_subqueries(
    flock: QueryFlock,
    chosen: Sequence[tuple[str, SubqueryCandidate | UnionSubqueryCandidate]],
    final_name: str = "ok",
) -> QueryPlan:
    """Build the Section 4.3 heuristic-1 plan shape (e.g. Fig. 5).

    Each ``(name, candidate)`` pair becomes an independent pre-filter
    step; the final step is the original query plus every pre-filter's
    ok-atom.  Per-branch ok-atom placement for unions appends the atom
    to each branch that mentions all of the step's parameters.
    """
    steps: list[FilterStep] = []
    ok_atoms: list[RelationalAtom] = []
    for name, candidate in chosen:
        query: FlockQuery
        if isinstance(candidate, UnionSubqueryCandidate):
            query = candidate.query
            params = tuple(sorted(candidate.parameters, key=lambda p: p.name))
        else:
            query = candidate.query
            params = tuple(sorted(candidate.parameters, key=lambda p: p.name))
        step = FilterStep(name, params, query)
        steps.append(step)
        ok_atoms.append(step.ok_atom)

    if flock.is_union:
        final_rules = tuple(
            rule.with_extra_subgoals(ok_atoms) for rule in flock.rules
        )
        final_query: FlockQuery = UnionQuery(final_rules)
    else:
        final_query = flock.rules[0].with_extra_subgoals(ok_atoms)
    steps.append(
        FilterStep(final_name, tuple(flock.parameters), final_query)
    )
    plan = QueryPlan(tuple(steps))
    validate_plan(flock, plan)
    return plan


def chained_plan(
    flock: QueryFlock,
    chain: Sequence[tuple[str, SubqueryCandidate]],
    final_name: str = "ok",
) -> QueryPlan:
    """Build the Section 4.3 heuristic-2 plan shape (e.g. Fig. 7).

    Steps form a chain: each step's query gains the ok-atom of the most
    recent previous step whose parameters are a subset of its own, so
    each level refines the last (the a-priori level-wise pattern, and
    the Example 4.3 n+1-step path plan of Fig. 7 — ``ok1`` uses ``ok0``,
    ``ok2`` uses ``ok1``, ...).  Earlier levels are implied by the most
    recent one (each ok-relation is a subset of its predecessor), so one
    atom suffices.
    """
    if flock.is_union:
        raise PlanError("chained plans are defined for single-rule flocks")

    def most_recent_applicable(
        steps: list[FilterStep], params: frozenset[Parameter]
    ) -> list[RelationalAtom]:
        for step in reversed(steps):
            if frozenset(step.parameters) <= params:
                return [step.ok_atom]
        return []

    steps: list[FilterStep] = []
    for name, candidate in chain:
        params = frozenset(candidate.parameters)
        usable = most_recent_applicable(steps, params)
        query = candidate.query.with_extra_subgoals(usable, prepend=True)
        steps.append(
            FilterStep(
                name,
                tuple(sorted(candidate.parameters, key=lambda p: p.name)),
                query,
            )
        )
    final_extra = most_recent_applicable(steps, frozenset(flock.parameters))
    final_query = flock.rules[0].with_extra_subgoals(final_extra)
    steps.append(FilterStep(final_name, tuple(flock.parameters), final_query))
    plan = QueryPlan(tuple(steps))
    validate_plan(flock, plan)
    return plan
