"""Sequences of dependent query flocks (paper footnote 2).

The paper notes that richer questions — e.g. "the set of *maximal* sets
of items that appear in at least c baskets" — are "expressed as a
sequence of query flocks for increasing cardinalities, with each flock
depending on the result of the previous flock".  This module provides
that composition:

* :class:`FlockSequence` — named steps; each step's flock may reference
  the materialized results of earlier steps as ordinary relations;
* :func:`mine_maximal_itemsets` — the paper's own example, built as a
  flock sequence: frequent k-itemsets for growing k, each level
  evaluated over the data plus the previous level's result, maximality
  determined by the subset relation between consecutive levels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..errors import PlanError
from ..relational.catalog import Database
from ..relational.relation import Relation
from .apriori import itemset_flock, itemset_plan
from .executor import execute_plan
from .flock import QueryFlock
from .naive import evaluate_flock
from .result import ExecutionTrace, StepTrace


@dataclass(frozen=True)
class SequenceStep:
    """One step of a flock sequence.

    ``build`` receives the scratch database (base data plus every prior
    step's result relation) and returns the flock to evaluate; a plain
    flock can be passed via :meth:`FlockSequence.add_flock`.  The result
    is materialized as ``name`` with the flock's parameter columns.
    """

    name: str
    build: Callable[[Database], QueryFlock]
    use_optimizer: bool = False


@dataclass
class SequenceResult:
    """All step results plus a trace of sizes and timings."""

    relations: dict[str, Relation]
    trace: ExecutionTrace

    def __getitem__(self, name: str) -> Relation:
        return self.relations[name]


class FlockSequence:
    """An ordered program of dependent flocks.

    Example::

        seq = FlockSequence()
        seq.add_flock("pairs", itemset_flock(2, support=20))
        seq.add("filtered_triples", lambda db: build_triple_flock(db))
        result = seq.run(db)
        result["pairs"]          # the materialized pair relation
    """

    def __init__(self) -> None:
        self.steps: list[SequenceStep] = []

    def add(
        self,
        name: str,
        build: Callable[[Database], QueryFlock],
        use_optimizer: bool = False,
    ) -> "FlockSequence":
        if any(s.name == name for s in self.steps):
            raise PlanError(f"sequence step {name!r} defined twice")
        self.steps.append(SequenceStep(name, build, use_optimizer))
        return self

    def add_flock(
        self, name: str, flock: QueryFlock, use_optimizer: bool = False
    ) -> "FlockSequence":
        return self.add(name, lambda _db: flock, use_optimizer)

    def run(self, db: Database) -> SequenceResult:
        """Evaluate every step in order against a scratch overlay."""
        scratch = db.scratch()
        trace = ExecutionTrace()
        relations: dict[str, Relation] = {}
        for step in self.steps:
            started = time.perf_counter()
            flock = step.build(scratch)
            if step.use_optimizer:
                from .optimizer import optimize

                plan = optimize(scratch, flock)
                result = execute_plan(scratch, flock, plan, validate=False)
                relation = result.relation
            else:
                relation = evaluate_flock(scratch, flock)
            elapsed = time.perf_counter() - started
            materialized = relation.with_name(step.name)
            scratch.add(materialized)
            relations[step.name] = materialized
            trace.record(
                StepTrace(
                    name=step.name,
                    description=str(flock.query).replace("\n", " | "),
                    input_tuples=scratch.total_tuples(),
                    output_assignments=len(materialized),
                    seconds=elapsed,
                )
            )
        return SequenceResult(relations, trace)


# ----------------------------------------------------------------------
# The paper's worked example: maximal frequent itemsets
# ----------------------------------------------------------------------


def mine_maximal_itemsets(
    db: Database,
    support: int,
    max_size: int | None = None,
    relation_name: str = "baskets",
    use_plans: bool = True,
) -> dict[int, set[frozenset]]:
    """Maximal frequent itemsets via a sequence of flocks.

    Level k's flock is the Fig. 2 flock with k parameters, evaluated
    with the a-priori plan (each level's pre-filters restrict to
    frequent single items).  A frequent k-set is *maximal* when no
    frequent (k+1)-set contains it.  Runs until a level is empty (or
    ``max_size``), per the footnote's "increasing cardinalities, with
    each flock depending on the result of the previous flock".
    """
    levels: dict[int, set[frozenset]] = {}
    k = 1
    while max_size is None or k <= max_size:
        flock = itemset_flock(k, support, relation_name=relation_name)
        if use_plans and k >= 2:
            plan = itemset_plan(flock)
            result = execute_plan(db, flock, plan, validate=False).relation
        else:
            result = evaluate_flock(db, flock)
        frequent = {frozenset(row) for row in result.tuples}
        if not frequent:
            break
        levels[k] = frequent
        k += 1

    maximal: dict[int, set[frozenset]] = {}
    sizes = sorted(levels)
    for size in sizes:
        bigger = levels.get(size + 1, set())
        keep = {
            itemset
            for itemset in levels[size]
            if not any(itemset < larger for larger in bigger)
        }
        if keep:
            maximal[size] = keep
    return maximal
