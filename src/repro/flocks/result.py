"""Result and trace types shared by the flock evaluators.

Every evaluator returns the flock result as a :class:`Relation` over the
parameter columns.  The plan executors additionally produce a
:class:`ExecutionTrace` recording, per step, the sizes the paper's
Section 4 reasons about — how many parameter assignments survived each
FILTER, how large the intermediate relations were, and how long each
step took — so benchmarks can report *why* a plan won, not just that it
did.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..relational.relation import Relation


@dataclass(frozen=True)
class StepTrace:
    """Measurements for one executed FILTER (or join) step."""

    name: str
    description: str
    input_tuples: int
    output_assignments: int
    seconds: float
    filtered: bool = True

    def __str__(self) -> str:
        action = "FILTER" if self.filtered else "JOIN"
        return (
            f"{action} {self.name}: {self.input_tuples} tuples -> "
            f"{self.output_assignments} assignments in {self.seconds * 1e3:.2f} ms"
        )


@dataclass
class ExecutionTrace:
    """The ordered step measurements of one plan execution."""

    steps: list[StepTrace] = field(default_factory=list)

    def record(self, step: StepTrace) -> None:
        self.steps.append(step)

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.steps)

    @property
    def total_intermediate_tuples(self) -> int:
        return sum(s.input_tuples for s in self.steps)

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.steps)


@dataclass(frozen=True)
class FlockResult:
    """A flock evaluation outcome: the acceptable parameter assignments
    plus (for plan execution) the per-step trace.

    ``stage_rows`` carries the in-memory engine's per-join-stage
    observations (estimate, UES bound, actual rows —
    :class:`~repro.engine.ir.StageObservation`) when the run collected
    them; ``runtime_filter_rows_pruned`` totals the scan rows removed by
    injected semi-join filters.  Both default to "nothing observed" so
    evaluators without the instrumentation stay unchanged.
    """

    relation: Relation
    trace: ExecutionTrace | None = None
    stage_rows: tuple = ()
    runtime_filter_rows_pruned: int = 0

    @property
    def assignments(self) -> frozenset[tuple]:
        return self.relation.tuples

    def __len__(self) -> int:
        return len(self.relation)

    def __iter__(self):
        return iter(self.relation)

    def __contains__(self, row: tuple) -> bool:
        return row in self.relation
