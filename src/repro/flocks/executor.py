"""Execution of query plans against a database.

Each FILTER step is lowered to a physical
:class:`~repro.engine.ir.StepPlan` — the union of its rules' join
stages, a GroupAggregate per filter conjunct, a ThresholdFilter, and a
Materialize of the surviving assignments — and interpreted by the
columnar :class:`~repro.engine.memory.MemoryEngine`, producing the
step's ok-relation in a scratch overlay of the database.  The final
step's relation is the flock result.

Why the final step is *cheaper* than the naive evaluation even though it
repeats the original query (the paper's Example 4.1 intuition): the
ok-atoms are small relations that join first, shrinking every
intermediate result.  The join ordering sees the small binding
relations and uses them early, which is exactly "the subgoals okS($s)
and okM($m) can be joined with other subgoals relatively quickly".
"""

from __future__ import annotations

import time
from typing import Collection

from ..datalog.query import as_union
from ..datalog.safety import assert_safe
from ..engine.ir import StageObservation
from ..engine.memory import MemoryEngine
from ..engine.planner import lower_step
from ..guard import ExecutionGuard, GuardLike, as_guard
from ..relational.catalog import Database
from ..relational.relation import Relation
from ..testing.faults import trip
from .filters import STAR, plan_aggregate_specs
from .flock import QueryFlock
from .plans import FilterStep, QueryPlan, validate_plan
from .result import ExecutionTrace, FlockResult, StepTrace


class ExecStats:
    """Mutable per-run accumulator for the engine's observability data:
    join-stage observations and scan rows pruned by runtime filters."""

    __slots__ = ("observations", "rows_pruned")

    def __init__(self) -> None:
        self.observations: list[StageObservation] = []
        self.rows_pruned: int = 0

    def absorb(self, engine: MemoryEngine) -> None:
        self.observations.extend(engine.stage_log)
        self.rows_pruned += engine.rows_pruned


def lower_filter_step(
    db: Database,
    flock: QueryFlock,
    step: FilterStep,
    order_strategy: str = "greedy",
    runtime_filters: Collection[str] | None = None,
):
    """Lower one FILTER step to its physical :class:`StepPlan`.

    This is the single lowering both backends share: the in-memory
    engine interprets the returned plan directly, the SQLite backend
    renders it to SQL (:mod:`repro.engine.sqlgen`).

    ``runtime_filters`` names already-materialized pre-filter relations
    whose survivor keys may be pushed into this step's scans as
    semi-join :class:`~repro.engine.ir.ScanFilter` operators (sideways
    information passing; see :func:`repro.engine.planner.scan_filter_map`).
    """
    params = list(step.parameters)
    param_cols = [str(p) for p in params]
    union = as_union(step.query)

    width = union.head_arity
    head_cols = tuple(f"_h{i}" for i in range(width))
    head_names = [str(t) for t in union.rules[0].head_terms]

    def resolve(condition) -> list[str]:
        if condition.target == STAR:
            return list(head_cols)
        # Map the named head variable to its positional column.
        return [head_cols[head_names.index(condition.target)]]

    for rule in union.rules:
        assert_safe(rule)
    aggregates, conditions = plan_aggregate_specs(flock.filter, resolve)
    return lower_step(
        db,
        union.rules,
        [params + list(rule.head_terms) for rule in union.rules],
        tuple(param_cols) + head_cols,
        param_cols,
        aggregates,
        conditions,
        step.result_name,
        order_strategy=order_strategy,
        runtime_filters=runtime_filters,
    )


def execute_step(
    db: Database,
    flock: QueryFlock,
    step: FilterStep,
    guard: ExecutionGuard | None = None,
    sink=None,
    final_sink=None,
    order_strategy: str = "greedy",
    parallel=None,
    supervisor=None,
    runtime_filters: Collection[str] | None = None,
    stats: ExecStats | None = None,
) -> tuple[Relation, int]:
    """Execute one FILTER step; return (ok-relation, answer-tuple count).

    The returned relation is named ``step.result_name`` with one column
    per step parameter.

    ``sink`` (a :class:`repro.session.SessionSink`, duck-typed) connects
    a *pre-filter* step to the session result cache: a cached containing
    result with an implied filter is served as the step's ok-relation
    directly — sound because a pre-filter ok only needs to be a superset
    of the true survivors (later steps, and always the final step,
    re-filter) — and a freshly computed ok is published for future
    sessions.  A served step reports 0 answer tuples: no base-relation
    join ran.

    ``final_sink`` marks the *final* step: its survivors are computed
    together with their per-conjunct aggregate values and published as
    an exact, re-filterable entry.  The final step is never served from
    the cache here — an upper bound is not the answer; exact reuse
    happens one level up in :func:`repro.flocks.mining.mine`.

    ``order_strategy`` picks the join ordering the step's rules are
    lowered with (``"greedy"`` or ``"selinger"``).

    ``parallel`` (a :class:`~repro.engine.parallel.ParallelExecutor`)
    runs the step partitioned when it has a usable partition column;
    aggregate values are only computed per partition when a
    ``final_sink`` wants them — otherwise workers early-exit-count
    survivorship.

    ``supervisor`` (a :class:`~repro.recovery.RetrySupervisor`) wraps
    the step body in the retry rung of the recovery ladder: a transient
    fault re-runs the step after a guard-clamped backoff instead of
    aborting the whole evaluation.
    """
    if supervisor is not None:
        body = supervisor.run(
            lambda: _execute_step_body(
                db, flock, step,
                guard=guard, sink=sink, final_sink=final_sink,
                order_strategy=order_strategy, parallel=parallel,
                runtime_filters=runtime_filters, stats=stats,
            ),
            site=f"step:{step.result_name}",
        )
        assert isinstance(body, tuple)
        return body
    return _execute_step_body(
        db, flock, step,
        guard=guard, sink=sink, final_sink=final_sink,
        order_strategy=order_strategy, parallel=parallel,
        runtime_filters=runtime_filters, stats=stats,
    )


def _execute_step_body(
    db: Database,
    flock: QueryFlock,
    step: FilterStep,
    guard: ExecutionGuard | None = None,
    sink=None,
    final_sink=None,
    order_strategy: str = "greedy",
    parallel=None,
    runtime_filters: Collection[str] | None = None,
    stats: ExecStats | None = None,
) -> tuple[Relation, int]:
    trip("executor.step")
    params = list(step.parameters)
    param_cols = [str(p) for p in params]

    if sink is not None and final_sink is None:
        served = sink.serve_step(step.query, param_cols)
        if served is not None:
            ok = served.project(param_cols, name=step.result_name)
            return ok, 0

    plan = lower_filter_step(
        db, flock, step,
        order_strategy=order_strategy, runtime_filters=runtime_filters,
    )

    if parallel is not None and parallel.jobs > 1:
        need_aggregates = final_sink is not None
        outcome = parallel.run_step(plan, db=db, need_aggregates=need_aggregates)
        ok = outcome.result
        if final_sink is not None:
            final_sink.publish_final(outcome.passed, outcome.answer_tuples)
        elif sink is not None:
            sink.publish_step(step.query, param_cols, ok, outcome.answer_tuples)
        return ok, outcome.answer_tuples

    engine = MemoryEngine(db, guard=guard)
    answer = engine.run_answer(plan)
    if guard is not None:
        guard.checkpoint(rows=len(answer), node=f"step:{step.result_name}")

    passed = engine.run_group_filter(answer, plan)
    ok = engine.finalize_step(passed, plan)
    if stats is not None:
        stats.absorb(engine)
    if final_sink is not None:
        final_sink.publish_final(passed, len(answer))
    elif sink is not None:
        sink.publish_step(step.query, param_cols, ok, len(answer))
    return ok, len(answer)


def execute_plan(
    db: Database,
    flock: QueryFlock,
    plan: QueryPlan,
    validate: bool = True,
    guard: GuardLike = None,
    sink=None,
    order_strategy: str = "greedy",
    parallel=None,
    supervisor=None,
    recorder=None,
    runtime_filters: bool = False,
) -> FlockResult:
    """Run a plan and return the flock result with a per-step trace.

    ``runtime_filters=True`` enables sideways information passing: once
    a pre-filter step's ok-relation materializes, its name joins the set
    of filter sources handed to every later step's lowering, so later
    scans that bind one of its parameter columns are pre-pruned to the
    survivor keys (see :class:`~repro.engine.ir.ScanFilter`).

    ``validate=False`` skips the legality check for hot benchmark loops
    where the same plan is executed repeatedly.

    ``sink`` connects the run to a session result cache: pre-filter
    steps may be served from (and are published to) the cache, and the
    final step publishes its survivors with aggregate values for exact
    threshold-aware reuse (see :func:`execute_step`).

    ``guard`` bounds the execution.  Completed FILTER steps are recorded
    on the guard's partial trace as they finish, so a mid-plan abort
    raises :class:`~repro.errors.BudgetExceededError` (or
    :class:`~repro.errors.ExecutionCancelled`) whose ``trace`` lists
    exactly the steps that completed.

    ``parallel`` hands every step to a
    :class:`~repro.engine.parallel.ParallelExecutor`; results stay
    bit-identical to serial execution (see :mod:`repro.engine.partition`).

    ``supervisor`` threads the retry rung through every step (see
    :func:`execute_step`).

    ``recorder`` (a :class:`~repro.recovery.CheckpointRecorder`)
    makes each completed step durable: a step already completed by the
    run being resumed is *served* from its saved survivor set (its
    trace entry says so, with 0 input tuples — no join ran), and each
    freshly executed step's ok-relation is persisted before the next
    step starts, so a crash loses at most the step in flight.
    """
    guard = as_guard(guard)
    if validate:
        validate_plan(flock, plan)
    scratch = db.scratch()
    trace = ExecutionTrace()
    stats = ExecStats()
    rf_sources: set[str] = set()
    result: Relation | None = None
    final_step = plan.final_step
    for step in plan.steps:
        started = time.perf_counter()
        served = (
            recorder.served(step.result_name) if recorder is not None else None
        )
        if served is not None:
            ok = served.project(
                [str(p) for p in step.parameters], name=step.result_name
            )
            answer_tuples = 0
            description = "resumed from checkpoint"
        else:
            ok, answer_tuples = execute_step(
                scratch, flock, step, guard=guard,
                sink=None if step is final_step else sink,
                final_sink=sink if step is final_step else None,
                order_strategy=order_strategy,
                parallel=parallel,
                supervisor=supervisor,
                runtime_filters=(
                    frozenset(rf_sources) if runtime_filters else None
                ),
                stats=stats,
            )
            description = str(step.query).replace("\n", " | ")
            if recorder is not None:
                recorder.complete(step.result_name, ok)
        elapsed = time.perf_counter() - started
        scratch.add(ok)
        if step is not final_step:
            rf_sources.add(step.result_name)
        step_trace = StepTrace(
            name=step.result_name,
            description=description,
            input_tuples=answer_tuples,
            output_assignments=len(ok),
            seconds=elapsed,
        )
        trace.record(step_trace)
        result = ok
        if guard is not None:
            guard.record(step_trace)
            guard.checkpoint(rows=len(ok), node=step.result_name)

    assert result is not None  # QueryPlan guarantees >= 1 step
    # Present the final relation over the flock's canonical column order.
    final = result.project(list(flock.parameter_columns), name="flock")
    if guard is not None:
        guard.check_answer(len(final))
    if recorder is not None:
        recorder.finish()
    return FlockResult(
        final,
        trace,
        stage_rows=tuple(stats.observations),
        runtime_filter_rows_pruned=stats.rows_pruned,
    )
