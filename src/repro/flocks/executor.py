"""Execution of query plans against a database.

Each FILTER step is executed as: evaluate the step's query with the
step's parameters as extra output columns, GROUP BY the parameters,
apply the flock's filter, and materialize the surviving assignments as
the step's ok-relation in a scratch overlay of the database.  The final
step's relation is the flock result.

Why the final step is *cheaper* than the naive evaluation even though it
repeats the original query (the paper's Example 4.1 intuition): the
ok-atoms are small relations that join first, shrinking every
intermediate result.  The executor's greedy join order sees the small
binding relations and uses them early, which is exactly "the subgoals
okS($s) and okM($m) can be joined with other subgoals relatively
quickly".
"""

from __future__ import annotations

import time

from ..datalog.query import as_union
from ..guard import ExecutionGuard, GuardLike, as_guard
from ..relational.catalog import Database
from ..relational.evaluate import evaluate_conjunctive
from ..relational.relation import Relation
from ..testing.faults import trip
from .filters import STAR, surviving_assignments, surviving_with_aggregates
from .flock import QueryFlock
from .plans import FilterStep, QueryPlan, validate_plan
from .result import ExecutionTrace, FlockResult, StepTrace


def execute_step(
    db: Database,
    flock: QueryFlock,
    step: FilterStep,
    guard: ExecutionGuard | None = None,
    sink=None,
    final_sink=None,
) -> tuple[Relation, int]:
    """Execute one FILTER step; return (ok-relation, answer-tuple count).

    The returned relation is named ``step.result_name`` with one column
    per step parameter.

    ``sink`` (a :class:`repro.session.SessionSink`, duck-typed) connects
    a *pre-filter* step to the session result cache: a cached containing
    result with an implied filter is served as the step's ok-relation
    directly — sound because a pre-filter ok only needs to be a superset
    of the true survivors (later steps, and always the final step,
    re-filter) — and a freshly computed ok is published for future
    sessions.  A served step reports 0 answer tuples: no base-relation
    join ran.

    ``final_sink`` marks the *final* step: its survivors are computed
    together with their per-conjunct aggregate values and published as
    an exact, re-filterable entry.  The final step is never served from
    the cache here — an upper bound is not the answer; exact reuse
    happens one level up in :func:`repro.flocks.mining.mine`.
    """
    trip("executor.step")
    params = list(step.parameters)
    param_cols = [str(p) for p in params]

    if sink is not None and final_sink is None:
        served = sink.serve_step(step.query, param_cols)
        if served is not None:
            ok = served.project(param_cols, name=step.result_name)
            return ok, 0

    union = as_union(step.query)

    width = union.head_arity
    head_cols = tuple(f"_h{i}" for i in range(width))
    rows: set[tuple] = set()
    for rule in union.rules:
        output = params + list(rule.head_terms)
        branch = evaluate_conjunctive(db, rule, output_terms=output, guard=guard)
        rows |= branch.tuples
    answer = Relation("answer", tuple(param_cols) + head_cols, rows)
    if guard is not None:
        guard.checkpoint(rows=len(answer), node=f"step:{step.result_name}")

    head_names = [str(t) for t in union.rules[0].head_terms]

    def resolve(condition) -> list[str]:
        if condition.target == STAR:
            return list(head_cols)
        # Map the named head variable to its positional column.
        return [head_cols[head_names.index(condition.target)]]

    if final_sink is not None:
        with_aggs = surviving_with_aggregates(
            answer, param_cols, flock.filter, resolve, name=step.result_name
        )
        final_sink.publish_final(with_aggs, len(answer))
        ok = with_aggs.project(param_cols, name=step.result_name)
    else:
        ok = surviving_assignments(
            answer, param_cols, flock.filter, resolve, name=step.result_name
        )
        if sink is not None:
            sink.publish_step(step.query, param_cols, ok, len(answer))
    return ok, len(answer)


def execute_plan(
    db: Database,
    flock: QueryFlock,
    plan: QueryPlan,
    validate: bool = True,
    guard: GuardLike = None,
    sink=None,
) -> FlockResult:
    """Run a plan and return the flock result with a per-step trace.

    ``validate=False`` skips the legality check for hot benchmark loops
    where the same plan is executed repeatedly.

    ``sink`` connects the run to a session result cache: pre-filter
    steps may be served from (and are published to) the cache, and the
    final step publishes its survivors with aggregate values for exact
    threshold-aware reuse (see :func:`execute_step`).

    ``guard`` bounds the execution.  Completed FILTER steps are recorded
    on the guard's partial trace as they finish, so a mid-plan abort
    raises :class:`~repro.errors.BudgetExceededError` (or
    :class:`~repro.errors.ExecutionCancelled`) whose ``trace`` lists
    exactly the steps that completed.
    """
    guard = as_guard(guard)
    if validate:
        validate_plan(flock, plan)
    scratch = db.scratch()
    trace = ExecutionTrace()
    result: Relation | None = None
    final_step = plan.final_step
    for step in plan.steps:
        started = time.perf_counter()
        ok, answer_tuples = execute_step(
            scratch, flock, step, guard=guard,
            sink=None if step is final_step else sink,
            final_sink=sink if step is final_step else None,
        )
        elapsed = time.perf_counter() - started
        scratch.add(ok)
        step_trace = StepTrace(
            name=step.result_name,
            description=str(step.query).replace("\n", " | "),
            input_tuples=answer_tuples,
            output_assignments=len(ok),
            seconds=elapsed,
        )
        trace.record(step_trace)
        result = ok
        if guard is not None:
            guard.record(step_trace)
            guard.checkpoint(rows=len(ok), node=step.result_name)

    assert result is not None  # QueryPlan guarantees >= 1 step
    # Present the final relation over the flock's canonical column order.
    final = result.project(list(flock.parameter_columns), name="flock")
    if guard is not None:
        guard.check_answer(len(final))
    return FlockResult(final, trace)
