"""The paper's figures as ready-made library objects.

Each function returns the flock (or plan) exactly as the corresponding
figure writes it, with the support threshold as a parameter (the paper
uses 20 throughout "as an example of a lower bound on support").
Useful for documentation, tests, and benchmarks — and as executable
citations: ``fig3_flock()`` *is* Figure 3.
"""

from __future__ import annotations

from ..datalog.atoms import atom, comparison, negated
from ..datalog.query import ConjunctiveQuery, UnionQuery, rule
from ..datalog.subqueries import SubqueryCandidate
from .filters import support_filter
from .flock import QueryFlock
from .plans import QueryPlan, chained_plan, plan_from_subqueries


def fig2_flock(support: int = 20, ordered: bool = False) -> QueryFlock:
    """Fig. 2: pairs of items appearing together in >= ``support``
    baskets.  ``ordered=True`` adds the Section 2.3 tie-break
    ``$1 < $2``."""
    body = [atom("baskets", "B", "$1"), atom("baskets", "B", "$2")]
    if ordered:
        body.append(comparison("$1", "<", "$2"))
    return QueryFlock(
        rule("answer", ["B"], body), support_filter(support, target="B")
    )


def fig3_flock(support: int = 20) -> QueryFlock:
    """Fig. 3 / Example 2.2: unexplained side-effects."""
    query = rule(
        "answer",
        ["P"],
        [
            atom("exhibits", "P", "$s"),
            atom("treatments", "P", "$m"),
            atom("diagnoses", "P", "D"),
            negated("causes", "D", "$s"),
        ],
    )
    return QueryFlock(query, support_filter(support, target="P"))


def fig4_flock(support: int = 20) -> QueryFlock:
    """Fig. 4 / Example 2.3: strongly connected words (3-rule union)."""
    r1 = rule(
        "answer",
        ["D"],
        [
            atom("inTitle", "D", "$1"),
            atom("inTitle", "D", "$2"),
            comparison("$1", "<", "$2"),
        ],
    )
    r2 = rule(
        "answer",
        ["A"],
        [
            atom("link", "A", "D1", "D2"),
            atom("inAnchor", "A", "$1"),
            atom("inTitle", "D2", "$2"),
            comparison("$1", "<", "$2"),
        ],
    )
    r3 = rule(
        "answer",
        ["A"],
        [
            atom("link", "A", "D1", "D2"),
            atom("inAnchor", "A", "$2"),
            atom("inTitle", "D2", "$1"),
            comparison("$1", "<", "$2"),
        ],
    )
    return QueryFlock(UnionQuery((r1, r2, r3)), support_filter(support))


def fig5_plan(flock: QueryFlock | None = None, support: int = 20) -> QueryPlan:
    """Fig. 5 / Example 4.1: the okS / okM / final medical plan."""
    flock = flock or fig3_flock(support)
    medical_rule = flock.rules[0]
    return plan_from_subqueries(
        flock,
        [
            ("okS", SubqueryCandidate((0,), medical_rule.with_body_subset([0]))),
            ("okM", SubqueryCandidate((1,), medical_rule.with_body_subset([1]))),
        ],
    )


def fig6_query(n: int) -> ConjunctiveQuery:
    """Fig. 6 / Example 4.3: ``answer(X) :- arc($1,X) AND arc(X,Y1) AND
    ... AND arc(Y[n-1],Yn)`` — nodes $1 with many successors from which
    an n-hop path extends."""
    if n < 0:
        raise ValueError("path length must be non-negative")
    body = [atom("arc", "$1", "X")]
    previous = "X"
    for i in range(1, n + 1):
        nxt = f"Y{i}"
        body.append(atom("arc", previous, nxt))
        previous = nxt
    return rule("answer", ["X"], body)


def fig6_flock(n: int, support: int = 20) -> QueryFlock:
    """The Fig. 6 path query wrapped as a flock with the usual support
    filter on the successor count."""
    return QueryFlock(fig6_query(n), support_filter(support, target="X"))


def fig7_plan(flock: QueryFlock) -> QueryPlan:
    """Fig. 7: the (n+1)-step chained plan for a Fig. 6 flock —
    ``ok0`` from the first subgoal, each level adding one arc and the
    previous level's ok relation."""
    query = flock.rules[0]
    chain = [
        (
            f"ok{level - 1}",
            SubqueryCandidate(
                tuple(range(level)), query.with_body_subset(range(level))
            ),
        )
        for level in range(1, len(query.body) + 1)
    ]
    return chained_plan(flock, chain)


def fig10_flock(threshold: int = 20) -> QueryFlock:
    """Fig. 10 / Section 5: the weighted-basket monotone SUM flock."""
    query = rule(
        "answer",
        ["B", "W"],
        [
            atom("baskets", "B", "$1"),
            atom("baskets", "B", "$2"),
            atom("importance", "B", "W"),
        ],
    )
    from .filters import FilterCondition
    from ..datalog.atoms import ComparisonOp
    from ..relational.aggregates import AggregateFunction

    condition = FilterCondition(
        AggregateFunction.SUM, "answer", "W", ComparisonOp.GE, threshold
    )
    return QueryFlock(query, condition)
