"""Side-by-side comparison of evaluation strategies.

The paper's whole argument is comparative — naive SQL-style evaluation
vs the a-priori rewrite vs dynamic filtering — so the library ships the
comparison harness as a feature rather than leaving it to ad-hoc
scripts: :func:`compare_strategies` runs any subset of the strategies
on one flock, verifies they agree exactly, and reports timings.

Used by the benchmark suite and handy for sizing a new workload::

    from repro.flocks import compare_strategies
    report = compare_strategies(db, flock)
    print(report.render())
    # strategy    time      result
    # naive       812.4 ms  214 assignments
    # optimized   301.2 ms  = naive
    # dynamic     176.9 ms  = naive
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..errors import FilterError
from ..relational.catalog import Database
from ..relational.relation import Relation
from .dynamic import evaluate_flock_dynamic
from .executor import execute_plan
from .flock import QueryFlock
from .naive import evaluate_flock
from .optimizer import FlockOptimizer, optimize_union
from .sqlbackend import SQLiteBackend


#: Everything compare_strategies knows how to run.
KNOWN_STRATEGIES = ("naive", "optimized", "stats", "dynamic", "sqlite")


@dataclass(frozen=True)
class StrategyTiming:
    """One strategy's outcome."""

    strategy: str
    seconds: float
    result_size: int
    agrees: bool
    note: str = ""

    def __str__(self) -> str:
        tail = f"  ({self.note})" if self.note else ""
        agreement = "= reference" if self.agrees else "DISAGREES"
        return (
            f"{self.strategy:<10s} {self.seconds * 1e3:9.1f} ms  "
            f"{self.result_size} assignments  {agreement}{tail}"
        )


@dataclass(frozen=True)
class ComparisonReport:
    """All strategies' outcomes; ``reference`` is the naive result."""

    flock: QueryFlock
    reference: Relation
    timings: tuple[StrategyTiming, ...]

    @property
    def all_agree(self) -> bool:
        return all(t.agrees for t in self.timings)

    def speedup(self, strategy: str) -> float:
        """naive time / strategy time (1.0 for naive itself)."""
        by_name = {t.strategy: t for t in self.timings}
        naive = by_name["naive"].seconds
        return naive / max(by_name[strategy].seconds, 1e-12)

    def fastest(self) -> StrategyTiming:
        return min(self.timings, key=lambda t: t.seconds)

    def render(self) -> str:
        header = f"strategies for: {self.flock.filter} over {len(self.reference)} assignments"
        return "\n".join([header] + [str(t) for t in self.timings])


def _run_strategy(
    db: Database, flock: QueryFlock, strategy: str
) -> tuple[Relation, str]:
    if strategy == "naive":
        return evaluate_flock(db, flock), ""
    if strategy == "dynamic":
        result, trace = evaluate_flock_dynamic(db, flock)
        return result.relation, f"{trace.filters_applied()} filters applied"
    if strategy in ("optimized", "stats"):
        if flock.is_union:
            plan = optimize_union(db, flock)
        else:
            plan = FlockOptimizer(
                db, flock, gather_statistics=(strategy == "stats")
            ).best_plan().plan
        result = execute_plan(db, flock, plan, validate=False)
        return result.relation, f"{len(plan)} plan steps"
    if strategy == "sqlite":
        with SQLiteBackend(db) as backend:
            return backend.evaluate_flock(flock), "Fig. 1 SQL on SQLite"
    raise FilterError(
        f"unknown strategy {strategy!r}; choose from {KNOWN_STRATEGIES}"
    )


def compare_strategies(
    db: Database,
    flock: QueryFlock,
    strategies: tuple[str, ...] | list[str] = ("naive", "optimized", "dynamic"),
    rounds: int = 1,
) -> ComparisonReport:
    """Run each strategy (best of ``rounds``), verify exact agreement
    with naive evaluation, and collect timings.

    ``"naive"`` is always run first as the reference, whether requested
    or not.  Strategies that cannot apply to the flock (e.g. pruning on
    a non-monotone filter) raise rather than silently skipping —
    comparisons should be explicit about what they compare.
    """
    ordered = ["naive"] + [s for s in strategies if s != "naive"]
    reference: Relation | None = None
    timings: list[StrategyTiming] = []
    for strategy in ordered:
        best = float("inf")
        relation: Relation | None = None
        note = ""
        for _ in range(max(rounds, 1)):
            started = time.perf_counter()
            relation, note = _run_strategy(db, flock, strategy)
            best = min(best, time.perf_counter() - started)
        assert relation is not None
        if reference is None:
            reference = relation
        timings.append(
            StrategyTiming(
                strategy=strategy,
                seconds=best,
                result_size=len(relation),
                agrees=relation == reference,
                note=note,
            )
        )
    assert reference is not None
    return ComparisonReport(flock, reference, tuple(timings))
