"""Static plan search for query flocks (Section 4.3).

The plan space of Section 4.2 is not even exponentially bounded, so the
paper proposes heuristics that restrict it.  This module implements
**heuristic 1**: choose some sets of parameters S, for each a safe
subquery mentioning exactly S, turn each into an independent pre-filter
step, and finish with the original query plus all the ok-atoms (the
Fig. 5 shape).  (**Heuristic 2** — chained level-wise steps — is built
by :func:`repro.flocks.plans.chained_plan` and specialized to classic
a-priori in :mod:`repro.flocks.apriori`.)

Costing uses textbook independence estimates plus one flock-specific
bound: by pigeonhole, at most ``|answer| / threshold`` parameter
assignments can reach a COUNT threshold, so a pre-filter step's output
is estimated as ``min(distinct assignments, answer_size / threshold)``.
That single line is why skewed data makes a-priori effective: the more
tuples concentrate on few assignments, the smaller the surviving set.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..errors import FilterError, PlanError
from ..datalog.atoms import Comparison, RelationalAtom
from ..datalog.query import ConjunctiveQuery, as_union
from ..datalog.subqueries import (
    SubqueryCandidate,
    parameter_subsets,
    safe_subqueries_with_parameters,
)
from ..datalog.terms import Parameter, Variable
from ..guard import GuardLike, as_guard
from ..relational.catalog import Database
from ..testing.faults import trip
from .flock import QueryFlock
from .plans import QueryPlan, plan_from_subqueries, single_step_plan

if TYPE_CHECKING:
    from ..analysis.certify import LegalityCertificate


#: Default selectivity guesses for non-relational subgoals, in the
#: tradition of System R's magic numbers.
COMPARISON_SELECTIVITY = 0.5
NEGATION_SELECTIVITY = 0.5


@dataclass(frozen=True)
class _RelationEstimate:
    """Cardinality + per-column distinct estimates for a (possibly
    not-yet-materialized) relation."""

    cardinality: float
    distinct: dict[str, float]

    def distinct_count(self, column: str) -> float:
        return self.distinct.get(column, 1.0)


def _base_estimate(db: Database, name: str) -> _RelationEstimate:
    stats = db.stats(name)
    return _RelationEstimate(
        float(stats.cardinality),
        {c: float(d) for c, d in stats.distinct.items()},
    )


def estimate_rule_size(
    db: Database,
    rule: ConjunctiveQuery,
    overrides: dict[str, _RelationEstimate] | None = None,
) -> float:
    """Independence estimate of the rule's join size (before projection).

    ``size = Π |R_i| / Π_v d_v^(occ(v)-1)`` where for each variable or
    parameter ``v`` occurring in ``occ(v)`` positive subgoals, ``d_v`` is
    the largest distinct-count among the columns it occupies.  Negated
    and arithmetic subgoals contribute fixed selectivities.
    """
    overrides = overrides or {}
    size = 1.0
    occurrences: dict[object, int] = {}
    max_distinct: dict[object, float] = {}

    for sg in rule.body:
        if isinstance(sg, RelationalAtom) and not sg.negated:
            est = overrides.get(sg.predicate) or _base_estimate(db, sg.predicate)
            size *= max(est.cardinality, 1.0)
            # Map subgoal positions to columns for distinct counts.
            base_columns: Sequence[str]
            if sg.predicate in overrides:
                base_columns = list(overrides[sg.predicate].distinct)
            else:
                base_columns = db.get(sg.predicate).columns
            for position, term in enumerate(sg.terms):
                if isinstance(term, (Parameter, Variable)):
                    occurrences[term] = occurrences.get(term, 0) + 1
                    if position < len(base_columns):
                        column = base_columns[position]
                        d = est.distinct_count(column)
                    else:
                        d = est.cardinality
                    max_distinct[term] = max(max_distinct.get(term, 1.0), d)
        elif isinstance(sg, RelationalAtom) and sg.negated:
            size *= NEGATION_SELECTIVITY
        elif isinstance(sg, Comparison):
            size *= COMPARISON_SELECTIVITY

    for term, occ in occurrences.items():
        if occ > 1:
            size /= max(max_distinct[term], 1.0) ** (occ - 1)
    return size


@dataclass(frozen=True)
class ScoredPlan:
    """A plan with its estimated total intermediate-tuple cost and (for
    a plan that won the search) its legality certificate."""

    plan: QueryPlan
    estimated_cost: float
    step_costs: tuple[tuple[str, float], ...]
    certificate: Optional["LegalityCertificate"] = None

    def __str__(self) -> str:
        steps = ", ".join(f"{n}≈{c:,.0f}" for n, c in self.step_costs)
        return f"plan[{len(self.plan)} steps] cost≈{self.estimated_cost:,.0f} ({steps})"


class FlockOptimizer:
    """Enumerates and scores Fig. 5-shaped plans for one flock.

    Args:
        db: the database (statistics source).
        flock: the flock to optimize; its filter must be monotone.
        candidates_per_set: how many cheapest safe subqueries to keep
            per parameter set (Example 3.2 shows several can coexist).
        max_param_set_size: cap on |S| for restriction sets; defaults to
            all sizes.
    """

    def __init__(
        self,
        db: Database,
        flock: QueryFlock,
        candidates_per_set: int = 2,
        max_param_set_size: int | None = None,
        gather_statistics: bool = False,
        guard: GuardLike = None,
        sink=None,
    ):
        if not flock.filter.is_monotone:
            raise FilterError(
                "cannot build a-priori plans for non-monotone filter "
                f"{flock.filter}"
            )
        if flock.is_union:
            raise PlanError(
                "FlockOptimizer handles single-rule flocks; use "
                "union_subqueries_with_parameters + plan_from_subqueries "
                "for unions"
            )
        self.db = db
        self.flock = flock
        self.guard = as_guard(guard)
        self.candidates_per_set = candidates_per_set
        self.max_param_set_size = max_param_set_size
        #: Section 4.4: "we may want to do substantial gathering of
        #: statistics to support the filter/don't filter decision".
        #: When enabled, single-subgoal pre-filter candidates are costed
        #: with their *exact* survivor counts (one cheap group-by scan
        #: each) instead of the pigeonhole bound.
        self.gather_statistics = gather_statistics
        #: Optional session sink: statistics probes first consult the
        #: session result cache for an exact prior survivor count, and
        #: publish freshly measured survivor sets for later reuse.
        self.sink = sink
        self._exact_ok_cache: dict[str, float] = {}
        self._rule = flock.rules[0]

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------

    def candidate_steps(self) -> list[tuple[str, SubqueryCandidate]]:
        """The pre-filter candidate pool: for every parameter set S, the
        cheapest few *proper* safe subqueries mentioning exactly S."""
        pool: list[tuple[str, SubqueryCandidate]] = []
        counter = 0
        for subset in parameter_subsets(
            self._rule, max_size=self.max_param_set_size
        ):
            candidates = safe_subqueries_with_parameters(self._rule, subset)
            candidates.sort(key=lambda c: (self.estimate_step_cost(c), c.subgoal_count))
            for candidate in candidates[: self.candidates_per_set]:
                name = f"ok{counter}"
                counter += 1
                pool.append((name, candidate))
        return pool

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def estimate_step_cost(self, candidate: SubqueryCandidate) -> float:
        """Join work to evaluate one pre-filter subquery."""
        return estimate_rule_size(self.db, candidate.query)

    def estimate_ok_assignments(self, candidate: SubqueryCandidate) -> float:
        """Estimated output size of a pre-filter step.

        Default: the pigeonhole bound (see module doc).  With
        ``gather_statistics`` and a single-subgoal candidate, the exact
        survivor count is measured with one group-by scan and cached —
        the paper's Section 4.4 statistics gathering.
        """
        if self.gather_statistics and len(candidate.query.body) == 1:
            key = str(candidate.query)
            cached = self._exact_ok_cache.get(key)
            if cached is not None:
                return cached
            exact = self._measure_ok_assignments(candidate)
            self._exact_ok_cache[key] = exact
            return exact
        answer_size = self.estimate_step_cost(candidate)
        domain = self._domain_size(candidate.parameters)
        threshold = self._pruning_threshold()
        if threshold <= 0:
            return domain
        return max(0.0, min(domain, answer_size / threshold))

    def _pruning_threshold(self) -> float:
        """The COUNT lower bound driving the pigeonhole estimate — for a
        composite filter, the strongest (largest) support conjunct; 0
        when no COUNT bound exists (no pigeonhole pruning estimate)."""
        from .filters import iter_conditions

        thresholds = [
            float(c.threshold)
            for c in iter_conditions(self.flock.filter)
            if c.is_support_condition
        ]
        return max(thresholds) if thresholds else 0.0

    def _measure_ok_assignments(self, candidate: SubqueryCandidate) -> float:
        """Exactly execute one (cheap) pre-filter step to learn its
        true survivor count.

        With a session sink attached, a prior *exact* measurement of an
        alpha-equivalent subquery at the same thresholds is reused (a
        bound would not do — a too-big count would distort the cost
        model), and a fresh measurement is published instead of being
        thrown away."""
        from .executor import execute_step
        from .plans import FilterStep

        if self.sink is not None:
            cached = self.sink.serve_exact_count(candidate.query)
            if cached is not None:
                return float(cached)
        params = tuple(sorted(candidate.parameters, key=lambda p: p.name))
        step = FilterStep("_stats_probe", params, candidate.query)
        ok, answer_tuples = execute_step(
            self.db, self.flock, step, guard=self.guard
        )
        if self.sink is not None:
            self.sink.publish_step(
                candidate.query, [str(p) for p in params], ok, answer_tuples
            )
        return float(len(ok))

    def _domain_size(self, parameters: Iterable[Parameter]) -> float:
        """Independence estimate of the number of distinct assignments."""
        total = 1.0
        for p in parameters:
            total *= self._parameter_distinct(p)
        return total

    def _parameter_distinct(self, parameter: Parameter) -> float:
        best = 1.0
        for sg in self._rule.positive_atoms():
            columns = self.db.get(sg.predicate).columns
            for position, term in enumerate(sg.terms):
                if term == parameter:
                    d = float(self.db.stats(sg.predicate).distinct_count(columns[position]))
                    best = max(best, d)
        return best

    def score(self, plan: QueryPlan) -> ScoredPlan:
        """Estimated total intermediate tuples across the plan's steps.

        Pre-filter steps cost their subquery's join size.  The final
        step costs the original join size scaled by each ok-atom's
        selectivity (surviving assignments / parameter domain).
        """
        step_costs: list[tuple[str, float]] = []
        overrides: dict[str, _RelationEstimate] = {}
        selectivity = 1.0

        for step in plan.prefilter_steps:
            rule = as_union(step.query).rules[0]
            cost = estimate_rule_size(self.db, rule, overrides)
            ok_size = self.estimate_ok_assignments(
                SubqueryCandidate((), self._strip_ok_atoms(rule, plan))
            )
            domain = self._domain_size(rule.parameters())
            if domain > 0:
                selectivity *= min(1.0, ok_size / domain)
            overrides[step.result_name] = _RelationEstimate(
                ok_size,
                {str(p): ok_size ** (1.0 / max(len(step.parameters), 1))
                 for p in step.parameters},
            )
            step_costs.append((step.result_name, cost))

        base_cost = estimate_rule_size(self.db, self._rule)
        final_cost = base_cost * selectivity
        step_costs.append((plan.final_step.result_name, final_cost))
        total = sum(c for _, c in step_costs)
        return ScoredPlan(plan, total, tuple(step_costs))

    def _strip_ok_atoms(
        self, rule: ConjunctiveQuery, plan: QueryPlan
    ) -> ConjunctiveQuery:
        names = set(plan.step_names())
        keep = [
            i
            for i, sg in enumerate(rule.body)
            if not (isinstance(sg, RelationalAtom) and sg.predicate in names)
        ]
        return rule.with_body_subset(keep)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def enumerate_plans(
        self, max_prefilters: int = 3
    ) -> list[QueryPlan]:
        """All Fig. 5-shaped plans with up to ``max_prefilters``
        independent pre-filter steps drawn from the candidate pool,
        plus the trivial single-step plan."""
        pool = self.candidate_steps()
        plans: list[QueryPlan] = [single_step_plan(self.flock)]
        for count in range(1, min(max_prefilters, len(pool)) + 1):
            for chosen in combinations(pool, count):
                plans.append(plan_from_subqueries(self.flock, list(chosen)))
        return plans

    def enumerate_chained_plans(self, max_chains: int = 8) -> list[QueryPlan]:
        """Section 4.3 heuristic 2: chains of nested safe subqueries.

        For each parameter set S, build the chain of safe subqueries
        with exactly the parameters S ordered by *growing* subgoal sets
        (each later member contains the previous one), so every level
        refines the last — the Fig. 7 pattern applied to arbitrary
        flocks.  Single-link chains duplicate heuristic 1 and are
        skipped.
        """
        from .plans import chained_plan

        plans: list[QueryPlan] = []
        for subset in parameter_subsets(
            self._rule, max_size=self.max_param_set_size
        ):
            candidates = safe_subqueries_with_parameters(self._rule, subset)
            candidates.sort(key=lambda c: c.subgoal_count)
            # A chain = a maximal ⊆-increasing sequence starting from a
            # minimal candidate.
            chain: list[SubqueryCandidate] = []
            for candidate in candidates:
                if not chain or set(chain[-1].indices) < set(candidate.indices):
                    chain.append(candidate)
            if len(chain) < 2:
                continue
            named = [
                (f"chain{len(plans)}_{level}", candidate)
                for level, candidate in enumerate(chain)
            ]
            plans.append(chained_plan(self.flock, named))
            if len(plans) >= max_chains:
                break
        return plans

    def best_plan(
        self, max_prefilters: int = 3, include_chains: bool = False
    ) -> ScoredPlan:
        """Exhaustively score the enumerated space; return the cheapest.

        ``include_chains=True`` adds the heuristic-2 chained plans to
        the candidate space.
        """
        plans = self.enumerate_plans(max_prefilters)
        if include_chains:
            plans.extend(self.enumerate_chained_plans())
        scored: list[ScoredPlan] = []
        for index, plan in enumerate(plans):
            trip("optimizer.search")
            if self.guard is not None:
                self.guard.checkpoint(
                    node=f"plan search {index + 1}/{len(plans)}"
                )
            scored.append(self.score(plan))
        return certify_scored_plan(
            self.flock, min(scored, key=lambda s: s.estimated_cost)
        )


def certify_scored_plan(flock: QueryFlock, scored: ScoredPlan) -> ScoredPlan:
    """Attach the full legality certificate to a search winner.

    The plan search hands out *certified* plans, not bare ones: the
    winner's per-step safety reports and containment witnesses are
    computed, and — when plan verification is ambient-enabled
    (:func:`repro.analysis.plan_verification_enabled`) — independently
    re-validated with :func:`repro.analysis.verify_certificate` before
    the plan is released for execution.
    """
    from dataclasses import replace

    from ..analysis.certify import certify_plan, verify_certificate
    from ..analysis.verification import plan_verification_enabled

    certificate = certify_plan(flock, scored.plan, witnesses=True)
    certificate.raise_for_errors()
    if plan_verification_enabled():
        report = verify_certificate(certificate)
        if not report.ok:
            details = "; ".join(str(d) for d in report.errors)
            raise PlanError(
                f"plan certificate failed re-validation: {details}"
            )
    return replace(scored, certificate=certificate)


def optimize(
    db: Database, flock: QueryFlock, max_prefilters: int = 3
) -> QueryPlan:
    """One-call static optimization: the cheapest Fig. 5-shaped plan."""
    return FlockOptimizer(db, flock).best_plan(max_prefilters).plan


def optimize_union(
    db: Database,
    flock: QueryFlock,
    max_param_set_size: int = 1,
    benefit_factor: float = 0.75,
    max_bounds: int = 2,
    guard: GuardLike = None,
) -> QueryPlan:
    """Static optimization for **union** flocks (Section 3.4).

    For each parameter subset (default: singletons, the Example 3.3
    shape) take the cheapest union bound — one minimal safe subquery per
    branch.  A bound is kept when evaluating it is estimated to cost
    less than ``benefit_factor`` times the full union (the pigeonhole
    saving estimate is loose for unions, so a cost-dominance test is
    used); at most ``max_bounds`` cheapest bounds are kept.  Falls back
    to the single-step plan when no bound pays.
    """
    from ..datalog.subqueries import union_subqueries_with_parameters
    from ..datalog.query import UnionQuery

    if not isinstance(flock.query, UnionQuery):
        raise PlanError("optimize_union expects a union flock")
    if not flock.filter.is_monotone:
        raise FilterError(
            "cannot build a-priori plans for non-monotone filter "
            f"{flock.filter}"
        )

    guard = as_guard(guard)
    union = flock.query
    base_cost = sum(estimate_rule_size(db, rule) for rule in union.rules)
    scored_bounds: list[tuple[float, object]] = []
    for subset in parameter_subsets(union, max_size=max_param_set_size):
        trip("optimizer.search")
        if guard is not None:
            guard.checkpoint(node="union plan search")
        bounds = union_subqueries_with_parameters(union, subset, max_candidates=4)
        if not bounds:
            continue
        best = min(
            bounds,
            key=lambda b: sum(
                estimate_rule_size(db, branch.query) for branch in b.branches
            ),
        )
        bound_cost = sum(
            estimate_rule_size(db, branch.query) for branch in best.branches
        )
        if bound_cost < base_cost * benefit_factor:
            scored_bounds.append((bound_cost, best))

    scored_bounds.sort(key=lambda pair: pair[0])
    chosen = [
        (f"okU{i}", bound)
        for i, (_cost, bound) in enumerate(scored_bounds[:max_bounds])
    ]
    if not chosen:
        return single_step_plan(flock)
    return plan_from_subqueries(flock, chosen)
