"""Translation of query flocks and plans to SQL text (Section 1.3, Fig. 1).

The paper argues flocks *can* be written in SQL — Fig. 1 is the pair
query as a self-join with GROUP BY/HAVING — but that conventional
optimizers won't discover the a-priori rewrite.  This module produces
both artifacts:

* :func:`flock_to_sql` — the naive one-statement translation (the thing
  a conventional DBMS would be handed);
* :func:`plan_to_sql` — the rewritten script with one materialized view
  per FILTER step (the rewrite the paper reports gave a 20-fold speedup
  on word-occurrence data).

Generated SQL targets the generic SQL-92 subset (``CREATE VIEW``,
``SELECT``-``FROM``-``WHERE``-``GROUP BY``-``HAVING``, ``NOT EXISTS``
for negated subgoals).
"""

from __future__ import annotations

from ..errors import PlanError
from ..datalog.atoms import Comparison, RelationalAtom
from ..datalog.query import ConjunctiveQuery, as_union
from ..datalog.terms import Constant, Term
from ..relational.aggregates import AggregateFunction
from ..relational.catalog import Database
from .filters import STAR
from .flock import QueryFlock
from .plans import QueryPlan


def _sql_literal(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return str(value)


class _RuleTranslator:
    """Translates one extended CQ into a SELECT (plus NOT EXISTS)."""

    def __init__(
        self,
        db: Database | None,
        rule: ConjunctiveQuery,
        extra_schemas: dict[str, list[str]] | None = None,
    ):
        self.db = db
        self.rule = rule
        self.extra_schemas = extra_schemas or {}
        self.aliases: list[tuple[str, RelationalAtom]] = []
        # term -> first "alias.column" that binds it
        self.bindings: dict[Term, str] = {}
        self.where: list[str] = []
        self._build()

    def _columns_of(self, atom: RelationalAtom) -> list[str]:
        if atom.predicate in self.extra_schemas:
            return self.extra_schemas[atom.predicate]
        if self.db is not None and atom.predicate in self.db:
            return list(self.db.get(atom.predicate).columns)
        return [f"c{i}" for i in range(atom.arity)]

    def _build(self) -> None:
        positives = [
            sg for sg in self.rule.body
            if isinstance(sg, RelationalAtom) and not sg.negated
        ]
        for i, atom in enumerate(positives):
            alias = f"t{i}"
            self.aliases.append((alias, atom))
            columns = self._columns_of(atom)
            for position, term in enumerate(atom.terms):
                ref = f"{alias}.{columns[position]}"
                if isinstance(term, Constant):
                    self.where.append(f"{ref} = {_sql_literal(term.value)}")
                elif term in self.bindings:
                    self.where.append(f"{self.bindings[term]} = {ref}")
                else:
                    self.bindings[term] = ref

        for sg in self.rule.body:
            if isinstance(sg, Comparison):
                self.where.append(
                    f"{self._term_sql(sg.left)} {sg.op.value} "
                    f"{self._term_sql(sg.right)}"
                )
            elif isinstance(sg, RelationalAtom) and sg.negated:
                self.where.append(self._not_exists(sg))

    def _term_sql(self, term: Term) -> str:
        if isinstance(term, Constant):
            return _sql_literal(term.value)
        try:
            return self.bindings[term]
        except KeyError:
            raise PlanError(
                f"term {term} of an arithmetic/negated subgoal is unbound; "
                "the rule is unsafe"
            ) from None

    def _not_exists(self, atom: RelationalAtom) -> str:
        columns = self._columns_of(atom)
        alias = "n"
        conditions = []
        for position, term in enumerate(atom.terms):
            ref = f"{alias}.{columns[position]}"
            if isinstance(term, Constant):
                conditions.append(f"{ref} = {_sql_literal(term.value)}")
            else:
                conditions.append(f"{ref} = {self._term_sql(term)}")
        condition_sql = " AND ".join(conditions) or "TRUE"
        return (
            f"NOT EXISTS (SELECT 1 FROM {atom.predicate} {alias} "
            f"WHERE {condition_sql})"
        )

    def select_sql(
        self,
        output_terms: list[Term],
        output_names: list[str],
        distinct: bool = True,
    ) -> str:
        select_items = []
        for term, name in zip(output_terms, output_names):
            select_items.append(f"{self._term_sql(term)} AS {name}")
        from_items = ", ".join(
            f"{atom.predicate} {alias}" for alias, atom in self.aliases
        )
        keyword = "SELECT DISTINCT" if distinct else "SELECT"
        sql = f"{keyword} {', '.join(select_items)}\nFROM {from_items}"
        if self.where:
            sql += "\nWHERE " + "\n  AND ".join(self.where)
        return sql


def flock_to_sql(flock: QueryFlock, db: Database | None = None) -> str:
    """The naive single-statement translation (Fig. 1 generalized).

    Parameters become the SELECT/GROUP BY columns; the filter becomes
    HAVING.  Union flocks translate each branch and UNION them inside a
    derived table before grouping.
    """
    params = list(flock.parameters)
    param_names = [f"p_{p.name}" for p in params]

    branches: list[str] = []
    for rule in flock.rules:
        translator = _RuleTranslator(db, rule)
        head_names = [f"a_{i}" for i in range(len(rule.head_terms))]
        branch = translator.select_sql(
            params + list(rule.head_terms), param_names + head_names
        )
        branches.append(branch)

    if len(branches) == 1:
        rule = flock.rules[0]
        translator = _RuleTranslator(db, rule)
        head_names = [f"a_{i}" for i in range(len(rule.head_terms))]
        inner = translator.select_sql(
            params + list(rule.head_terms), param_names + head_names
        )
        group = ", ".join(param_names)
        having_sql = _having_sql(flock, rule, head_names)
        return (
            f"SELECT {group}\nFROM (\n{_indent(inner)}\n) answer\n"
            f"GROUP BY {group}\n"
            f"HAVING {having_sql};"
        )

    union_sql = "\nUNION\n".join(branches)
    group = ", ".join(param_names)
    width = as_union(flock.query).head_arity
    head_names = [f"a_{i}" for i in range(width)]
    having_sql = _having_sql(flock, flock.rules[0], head_names, star_only=True)
    return (
        f"SELECT {group}\nFROM (\n{_indent(union_sql)}\n) answer\n"
        f"GROUP BY {group}\n"
        f"HAVING {having_sql};"
    )


def _having_sql(
    flock: QueryFlock,
    rule: ConjunctiveQuery,
    head_names: list[str],
    star_only: bool = False,
) -> str:
    """The HAVING clause for the flock's filter — conjuncts joined with
    AND.

    COUNT counts distinct answer tuples (``COUNT(DISTINCT ...)``);
    SUM/MIN/MAX aggregate the target column *per answer row* — the inner
    ``SELECT DISTINCT`` already made answer rows unique, and applying
    DISTINCT inside the aggregate would wrongly collapse equal values
    from different answers (two baskets with the same weight both count
    toward ``SUM(answer.W)``).
    """
    from .filters import iter_conditions

    clauses: list[str] = []
    name_map = {str(t): n for t, n in zip(rule.head_terms, head_names)}
    for condition in iter_conditions(flock.filter):
        if condition.target == STAR or star_only:
            agg_inner = ", ".join(head_names)
        else:
            agg_inner = name_map[condition.target]
        if condition.aggregate is AggregateFunction.COUNT:
            agg = f"COUNT(DISTINCT {agg_inner})"
        else:
            agg = f"{condition.aggregate.value}({agg_inner})"
        clauses.append(f"{agg} {condition.op.value} {condition.threshold}")
    return " AND ".join(clauses)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def plan_to_sql(flock: QueryFlock, plan: QueryPlan, db: Database | None = None) -> str:
    """The rewritten script: one materialized table per FILTER step.

    This is the Section 1.3 rewrite — e.g. for market baskets, a first
    relation of frequent items joined back into the pair query —
    expressed mechanically for any legal plan.  Steps are materialized
    with ``CREATE TABLE ... AS`` (a view would be re-expanded by most
    engines, losing the whole point of computing the filter once).
    """
    statements: list[str] = []
    view_schemas: dict[str, list[str]] = {}
    for index, step in enumerate(plan.steps):
        is_final = index == len(plan.steps) - 1
        params = list(step.parameters)
        param_names = [f"p_{p.name}" for p in params]
        rule = as_union(step.query).rules[0]
        if len(as_union(step.query).rules) > 1:
            raise PlanError("plan_to_sql currently renders single-rule steps")
        translator = _RuleTranslator(db, rule, extra_schemas=view_schemas)
        view_schemas[step.result_name] = param_names
        head_names = [f"a_{i}" for i in range(len(rule.head_terms))]
        inner = translator.select_sql(
            params + list(rule.head_terms), param_names + head_names
        )
        group = ", ".join(param_names)
        having_sql = _having_sql(flock, rule, head_names)
        body = (
            f"SELECT {group}\nFROM (\n{_indent(inner)}\n) answer\n"
            f"GROUP BY {group}\n"
            f"HAVING {having_sql}"
        )
        if is_final:
            statements.append(body + ";")
        else:
            statements.append(
                f"CREATE TABLE {step.result_name} AS\n{_indent(body)};"
            )
    return "\n\n".join(statements)


def fig1_sql() -> str:
    """The literal Fig. 1 query, for documentation and tests."""
    return (
        "SELECT i1.Item, i2.Item\n"
        "FROM baskets i1, baskets i2\n"
        "WHERE i1.Item < i2.Item AND\n"
        "      i1.BID = i2.BID\n"
        "GROUP BY i1.Item, i2.Item\n"
        "HAVING 20 <= COUNT(i1.BID)"
    )
