"""A conventional-DBMS execution backend (SQLite).

Section 1.4: "we assume that the data is stored in a conventional
relational system and that mining occurs by issuing a sequence of SQL
queries to the database."  This backend does exactly that: it loads a
:class:`~repro.relational.catalog.Database` into SQLite and evaluates
flocks by issuing the SQL our translator generates — the naive Fig. 1
statement, or the Section 1.3 rewrite script for a plan.

The backend is the "DBMS-based setting" of the paper's argument; the
in-memory engine is the "file-based" one.  Both must agree on every
answer, which the test suite checks for all the canonical flocks.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable

from ..errors import EvaluationError
from ..relational.catalog import Database
from ..relational.relation import Relation
from .flock import QueryFlock
from .plans import QueryPlan
from .sql import flock_to_sql, plan_to_sql


class SQLiteBackend:
    """Evaluate flocks on SQLite via generated SQL.

    Usage::

        with SQLiteBackend(db) as backend:
            result = backend.evaluate_flock(flock)          # Fig. 1 SQL
            faster = backend.execute_plan(flock, plan)      # rewrite script
        assert result == faster

    The connection is in-memory by default; pass ``path`` for a file.
    """

    def __init__(self, db: Database | None = None, path: str = ":memory:"):
        self.connection = sqlite3.connect(path)
        self._loaded: Database | None = None
        if db is not None:
            self.load(db)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def load(self, db: Database) -> None:
        """(Re)load every relation of ``db`` as a SQLite table."""
        cursor = self.connection.cursor()
        for name in db.names():
            relation = db.get(name)
            cursor.execute(f"DROP TABLE IF EXISTS {name}")
            columns = ", ".join(relation.columns)
            cursor.execute(f"CREATE TABLE {name} ({columns})")
            placeholders = ", ".join("?" for _ in relation.columns)
            cursor.executemany(
                f"INSERT INTO {name} VALUES ({placeholders})",
                sorted(relation.tuples, key=repr),
            )
        self.connection.commit()
        self._loaded = db

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self.connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _require_loaded(self) -> Database:
        if self._loaded is None:
            raise EvaluationError("no database loaded into the SQL backend")
        return self._loaded

    def evaluate_flock(self, flock: QueryFlock) -> Relation:
        """The naive one-statement evaluation (the Fig. 1 path)."""
        db = self._require_loaded()
        sql = flock_to_sql(flock, db)
        rows = self._run_script(sql)
        return Relation("flock", flock.parameter_columns, rows)

    def execute_plan(self, flock: QueryFlock, plan: QueryPlan) -> Relation:
        """The rewritten evaluation: one materialized table per FILTER
        step (the Section 1.3 path).  Step tables are dropped afterwards
        so the backend can be reused."""
        db = self._require_loaded()
        script = plan_to_sql(flock, plan, db)
        try:
            rows = self._run_script(script)
        finally:
            cursor = self.connection.cursor()
            for step in plan.prefilter_steps:
                cursor.execute(f"DROP TABLE IF EXISTS {step.result_name}")
            self.connection.commit()
        return Relation("flock", flock.parameter_columns, rows)

    def _run_script(self, script: str) -> set[tuple]:
        statements = [s.strip() for s in script.split(";") if s.strip()]
        rows: set[tuple] = set()
        cursor = self.connection.cursor()
        for index, statement in enumerate(statements):
            result = cursor.execute(statement)
            if index == len(statements) - 1:
                rows = {tuple(r) for r in result.fetchall()}
        return rows


def evaluate_flock_sqlite(db: Database, flock: QueryFlock) -> Relation:
    """One-call convenience: load, evaluate naively, close."""
    with SQLiteBackend(db) as backend:
        return backend.evaluate_flock(flock)


def execute_plan_sqlite(
    db: Database, flock: QueryFlock, plan: QueryPlan
) -> Relation:
    """One-call convenience: load, run the rewrite script, close."""
    with SQLiteBackend(db) as backend:
        return backend.execute_plan(flock, plan)
