"""A conventional-DBMS execution backend (SQLite).

Section 1.4: "we assume that the data is stored in a conventional
relational system and that mining occurs by issuing a sequence of SQL
queries to the database."  This backend does exactly that: it loads a
:class:`~repro.relational.catalog.Database` into SQLite, lowers each
FILTER step to the same physical :class:`~repro.engine.ir.StepPlan` the
in-memory engine interprets
(:func:`~repro.flocks.executor.lower_filter_step`), and issues the SQL
:mod:`repro.engine.sqlgen` renders from it — the naive Fig. 1 statement
for a whole flock, or the Section 1.3 rewrite script for a plan.

The backend is the "DBMS-based setting" of the paper's argument; the
in-memory engine is the "file-based" one.  Both must agree on every
answer, which the test suite checks for all the canonical flocks.

Robustness contract:

* every raw :mod:`sqlite3` exception escaping a public method is wrapped
  as :class:`~repro.errors.EvaluationError` with the offending SQL
  attached;
* *transient* operational errors ("database is locked"/"busy") are
  retried with capped exponential backoff before giving up — the
  :func:`~repro.flocks.mining.mine` front door falls back to the
  in-memory engine when the retries are exhausted;
* an :class:`~repro.guard.ExecutionGuard` is enforced from inside the
  SQLite VM via a progress handler (wall-clock deadline and
  cancellation) and per materialized step table (row budget), raising
  :class:`~repro.errors.BudgetExceededError` /
  :class:`~repro.errors.ExecutionCancelled` with the partial trace of
  the statements that completed.
"""

from __future__ import annotations

import sqlite3
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from ..engine.partition import partition_step, stable_hash
from ..engine.sqlgen import (
    column_source,
    materialize_step,
    render_step,
    safe_column,
)
from ..errors import EvaluationError, ExecutionAborted
from ..guard import ExecutionGuard, GuardLike, as_guard
from ..recovery import TRANSIENT_SQLITE_MARKERS, RetryPolicy
from ..relational.catalog import Database
from ..relational.relation import Relation
from ..testing.faults import WorkerKill, trip
from .executor import lower_filter_step
from .flock import QueryFlock
from .plans import QueryPlan, single_step_plan


#: Substrings that mark a retryable sqlite3.OperationalError (the
#: shared classifier in :mod:`repro.recovery` is the source of truth).
_TRANSIENT_MARKERS = TRANSIENT_SQLITE_MARKERS

#: How many SQLite VM opcodes run between guard polls.
_PROGRESS_OPCODES = 1000


class SQLiteBackend:
    """Evaluate flocks on SQLite via generated SQL.

    Usage::

        with SQLiteBackend(db) as backend:
            result = backend.evaluate_flock(flock)          # Fig. 1 SQL
            faster = backend.execute_plan(flock, plan)      # rewrite script
        assert result == faster

    The connection is in-memory by default; pass ``path`` for a file.

    Args:
        max_retries: attempts per statement for transient operational
            errors ("database is locked"/"busy") before the error is
            wrapped and raised.
        retry_backoff: initial sleep between retries; doubles per
            attempt, capped at :attr:`MAX_BACKOFF_SECONDS`.
        check_same_thread: forwarded to :func:`sqlite3.connect`; the
            parallel path creates worker backends with ``False`` so a
            pool thread may drive a connection built on the main thread
            (each worker connection is still used by one thread at a
            time).
    """

    MAX_BACKOFF_SECONDS = 0.25

    def __init__(
        self,
        db: Database | None = None,
        path: str = ":memory:",
        max_retries: int = 3,
        retry_backoff: float = 0.05,
        check_same_thread: bool = True,
    ):
        self.connection = sqlite3.connect(
            path, check_same_thread=check_same_thread
        )
        # The partition UDF backing parallel execution: partitioned
        # SELECTs restrict each branch with repro_partition(col) % N = i.
        # Same hash as the in-memory engine (CRC-32 of repr) so plans
        # mean the same thing on every backend and in every process.
        self.connection.create_function(
            "repro_partition", 1, stable_hash, deterministic=True
        )
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: The shared recovery-layer policy behind the statement retry:
        #: ``max_retries`` retries = ``max_retries + 1`` total attempts,
        #: jitter off so the backoff schedule stays deterministic for a
        #: single-connection backend.
        self.retry_policy = RetryPolicy(
            max_attempts=max_retries + 1,
            base_delay=retry_backoff,
            max_delay=self.MAX_BACKOFF_SECONDS,
            jitter=0.0,
        )
        #: Injectable for tests; production uses time.sleep.
        self._sleep = time.sleep
        #: The guard of the script currently running (retry sleeps are
        #: clamped to its remaining wall-clock).
        self._active_guard: ExecutionGuard | None = None
        self._loaded: Database | None = None
        #: Guard abort raised from inside the progress handler, if any.
        self._guard_abort: list[ExecutionAborted] = []
        if db is not None:
            self.load(db)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def load(self, db: Database) -> None:
        """(Re)load every relation of ``db`` as a SQLite table."""
        cursor = self.connection.cursor()
        for name in db.names():
            relation = db.get(name)
            self._execute(cursor, f"DROP TABLE IF EXISTS {name}")
            columns = ", ".join(relation.columns)
            self._execute(cursor, f"CREATE TABLE {name} ({columns})")
            placeholders = ", ".join("?" for _ in relation.columns)
            self._execute(
                cursor,
                f"INSERT INTO {name} VALUES ({placeholders})",
                parameters=sorted(relation.tuples, key=repr),
                many=True,
            )
        self.connection.commit()
        self._loaded = db

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self.connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _require_loaded(self) -> Database:
        if self._loaded is None:
            raise EvaluationError("no database loaded into the SQL backend")
        return self._loaded

    def evaluate_flock(
        self,
        flock: QueryFlock,
        guard: GuardLike = None,
        order_strategy: str = "greedy",
        parallel=None,
    ) -> Relation:
        """The naive one-statement evaluation (the Fig. 1 path).

        ``parallel`` (a :class:`~repro.engine.parallel.ParallelExecutor`)
        fans the statement out over per-worker connections, each running
        one hash partition of the plan; a worker failure degrades back
        to the serial statement and records the downgrade.
        """
        db = self._require_loaded()
        guard = as_guard(guard)
        step_plan = lower_filter_step(
            db, flock, single_step_plan(flock).final_step,
            order_strategy=order_strategy,
        )
        if parallel is not None and parallel.jobs > 1:
            rows = self._parallel_step_rows(
                step_plan, column_source(db, {}), parallel, guard
            )
            if rows is not None:
                if guard is not None:
                    guard.check_answer(len(rows))
                return Relation("flock", flock.parameter_columns, rows)
        sql = render_step(step_plan, column_source(db, {})) + ";"
        rows = self._run_script(sql, guard=guard)
        return Relation("flock", flock.parameter_columns, rows)

    def evaluate_flock_with_aggregates(
        self, flock: QueryFlock, guard: GuardLike = None
    ) -> Relation:
        """Survivors together with their per-conjunct aggregate values
        (one ``_agg{i}`` column per filter conjunct) — the SQL rendering
        of the in-memory engine's ``group_filter`` output, compared
        column for column by the differential tests."""
        db = self._require_loaded()
        step_plan = lower_filter_step(
            db, flock, single_step_plan(flock).final_step
        )
        sql = render_step(
            step_plan, column_source(db, {}), include_aggregates=True
        ) + ";"
        rows = self._run_script(sql, guard=as_guard(guard))
        columns = tuple(flock.parameter_columns) + tuple(
            spec.column for spec in step_plan.group.aggregates
        )
        return Relation("flock", columns, rows)

    def _plan_script(
        self,
        flock: QueryFlock,
        plan: QueryPlan,
        order_strategy: str = "greedy",
        runtime_filters: bool = False,
    ) -> str:
        """Lower every step of ``plan`` and render the rewrite script.

        Pre-filter ok-relations are registered in a scratch catalog as
        empty placeholders, so the planner's join ordering sees them as
        the smallest relations and joins them first — the Example 4.1
        point of the rewrite.

        With ``runtime_filters``, each later step's scans additionally
        gain ``IN (SELECT ... FROM ok_...)`` semi-join conjuncts over
        the already-materialized step tables.  The lowering-time
        catalog only holds empty placeholders, so the recorded key
        counts are advisory — the subqueries read the real tables when
        the script runs.
        """
        db = self._require_loaded()
        scratch = db.scratch()
        schemas: dict[str, list[str]] = {}
        statements: list[str] = []
        materialized: set[str] = set()
        final = plan.final_step
        for step in plan.steps:
            step_plan = lower_filter_step(
                scratch, flock, step, order_strategy=order_strategy,
                runtime_filters=(
                    frozenset(materialized) if runtime_filters else None
                ),
            )
            columns_of = column_source(db, schemas)
            if step is final:
                statements.append(render_step(step_plan, columns_of) + ";")
            else:
                statements.append(
                    materialize_step(step_plan, columns_of) + ";"
                )
                schemas[step.result_name] = [
                    safe_column(c) for c in step_plan.root.columns
                ]
                scratch.add(
                    Relation(
                        step.result_name,
                        tuple(str(p) for p in step.parameters),
                    )
                )
                materialized.add(step.result_name)
        return "\n\n".join(statements)

    def execute_plan(
        self,
        flock: QueryFlock,
        plan: QueryPlan,
        guard: GuardLike = None,
        order_strategy: str = "greedy",
        parallel=None,
        runtime_filters: bool = False,
    ) -> Relation:
        """The rewritten evaluation: one materialized table per FILTER
        step (the Section 1.3 path).  Step tables are dropped afterwards
        so the backend can be reused.

        With ``parallel``, each step's SELECT runs partitioned across
        per-worker connections; the merged survivors are inserted as the
        step table into the main and every worker connection, so later
        steps lower and render exactly as in the serial script.

        ``runtime_filters`` injects semi-join ``IN`` conjuncts over
        already-materialized step tables into later steps' scans (see
        :meth:`_plan_script`).
        """
        guard = as_guard(guard)
        if parallel is not None and parallel.jobs > 1:
            result = self._execute_plan_parallel(
                flock, plan, guard, order_strategy, parallel,
                runtime_filters=runtime_filters,
            )
            if result is not None:
                return result
        script = self._plan_script(
            flock, plan, order_strategy=order_strategy,
            runtime_filters=runtime_filters,
        )
        step_names = tuple(s.result_name for s in plan.prefilter_steps)
        try:
            rows = self._run_script(
                script, guard=guard, step_names=step_names
            )
        finally:
            cursor = self.connection.cursor()
            for step in plan.prefilter_steps:
                try:
                    cursor.execute(f"DROP TABLE IF EXISTS {step.result_name}")
                except sqlite3.Error:  # cleanup must not mask the error
                    pass
            self.connection.commit()
        return Relation("flock", flock.parameter_columns, rows)

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------
    #
    # SQLite in-memory databases are per-connection, so parallelism
    # means per-worker *backends*: each worker thread drives its own
    # connection (the sqlite3 VM releases the GIL, so threads give real
    # parallelism here) and runs the same step SQL restricted to one
    # hash partition via the repro_partition UDF.  Partitioned results
    # are exact for the same reason as in the memory engine — see
    # repro.engine.partition — so the union of worker rows equals the
    # serial statement's rows.

    def _spawn_workers(self, count: int) -> list["SQLiteBackend"]:
        db = self._require_loaded()
        return [
            SQLiteBackend(
                db,
                max_retries=self.max_retries,
                retry_backoff=self.retry_backoff,
                check_same_thread=False,
            )
            for _ in range(count)
        ]

    def _parallel_step_rows(
        self,
        step_plan,
        columns_of,
        parallel,
        guard: ExecutionGuard | None,
        workers: list["SQLiteBackend"] | None = None,
    ) -> set[tuple] | None:
        """Run one step plan partitioned across worker connections.

        Returns the merged row set, or ``None`` when the step has no
        partition column or a worker failed (failure is recorded as a
        downgrade on ``parallel``; the caller's serial path takes over).
        The shared ``guard`` is enforced inside every worker's VM via
        its progress handler, so budgets and cancellation propagate.
        """
        plan = partition_step(step_plan, parallel.jobs, db=None)
        if plan is None:
            return None
        parts = plan.partition.parts
        statements = [
            render_step(
                step_plan,
                columns_of,
                partition=(plan.partition.column, parts, index),
            ) + ";"
            for index in range(parts)
        ]

        def run_partition(worker: "SQLiteBackend", sql: str) -> set[tuple]:
            trip("parallel.worker")
            return worker._run_script(sql, guard=guard)

        own_workers = workers is None
        try:
            if own_workers:
                workers = self._spawn_workers(parts)
            with ThreadPoolExecutor(max_workers=parallel.jobs) as pool:
                futures = [
                    pool.submit(run_partition, worker, sql)
                    for worker, sql in zip(workers, statements)
                ]
                rows: set[tuple] = set()
                for future in futures:
                    rows |= future.result()
        except ExecutionAborted:
            raise
        except (Exception, WorkerKill) as error:
            detail = f"{type(error).__name__}: {error}".rstrip(": ")
            parallel.note_downgrade(
                f"SQL worker failure ({detail}); step "
                f"{step_plan.result_name!r} re-ran serially"
            )
            return None
        finally:
            if own_workers and workers is not None:
                for worker in workers:
                    worker.close()
        parallel.ran_parallel = True
        parallel.last_mode = "thread"
        return rows

    def _execute_plan_parallel(
        self,
        flock: QueryFlock,
        plan: QueryPlan,
        guard: ExecutionGuard | None,
        order_strategy: str,
        parallel,
        runtime_filters: bool = False,
    ) -> Relation | None:
        """The rewrite script with every step's SELECT partitioned.

        Lowering mirrors :meth:`_plan_script` exactly — same scratch
        placeholders, same schemas — so join orders and rendered SQL
        (minus the partition conjunct) are identical to the serial
        script.  Merged step tables are created on the main connection
        *and* every worker, keeping all catalogs in step.  Returns
        ``None`` on worker failure (downgrade recorded) so the caller
        reruns the serial script.
        """
        db = self._require_loaded()
        scratch = db.scratch()
        schemas: dict[str, list[str]] = {}
        workers: list["SQLiteBackend"] = []
        created: list[str] = []
        final = plan.final_step
        try:
            workers = self._spawn_workers(parallel.jobs)
            rows: set[tuple] = set()
            for step in plan.steps:
                started = time.perf_counter()
                step_plan = lower_filter_step(
                    scratch, flock, step, order_strategy=order_strategy,
                    runtime_filters=(
                        frozenset(created) if runtime_filters else None
                    ),
                )
                columns_of = column_source(db, schemas)
                rows_or_none = self._parallel_step_rows(
                    step_plan, columns_of, parallel, guard, workers=workers
                )
                if rows_or_none is None:
                    # No partition column for this step (or its workers
                    # failed): run it serially on the main connection —
                    # worker catalogs stay in step via the table fan-out
                    # below.
                    sql = render_step(step_plan, columns_of) + ";"
                    rows = self._run_script(sql, guard=guard)
                else:
                    rows = rows_or_none
                if step is not final:
                    safe_cols = [
                        safe_column(c) for c in step_plan.root.columns
                    ]
                    self._create_step_table(
                        step.result_name, safe_cols, rows, workers
                    )
                    created.append(step.result_name)
                    schemas[step.result_name] = safe_cols
                    scratch.add(
                        Relation(
                            step.result_name,
                            tuple(str(p) for p in step.parameters),
                        )
                    )
                if guard is not None:
                    guard.note_step(
                        name=step.result_name,
                        description=f"parallel SQL x{parallel.jobs}",
                        input_tuples=len(rows),
                        output_assignments=len(rows),
                        seconds=time.perf_counter() - started,
                        filtered=True,
                    )
                    guard.checkpoint(rows=len(rows), node=step.result_name)
            if guard is not None:
                guard.check_answer(len(rows))
            return Relation("flock", flock.parameter_columns, rows)
        except ExecutionAborted:
            raise
        except (Exception, WorkerKill) as error:
            detail = f"{type(error).__name__}: {error}".rstrip(": ")
            parallel.note_downgrade(
                f"SQL worker failure ({detail}); plan re-ran serially"
            )
            return None
        finally:
            for worker in workers:
                worker.close()
            cursor = self.connection.cursor()
            for name in created:
                try:
                    cursor.execute(f"DROP TABLE IF EXISTS {name}")
                except sqlite3.Error:  # cleanup must not mask the error
                    pass
            self.connection.commit()

    def _create_step_table(
        self,
        name: str,
        columns: list[str],
        rows: set[tuple],
        workers: list["SQLiteBackend"],
    ) -> None:
        """Materialize one merged step result as a table on the main
        connection and every worker connection."""
        ordered = sorted(rows, key=repr)
        for backend in [self] + list(workers):
            cursor = backend.connection.cursor()
            backend._execute(cursor, f"DROP TABLE IF EXISTS {name}")
            backend._execute(
                cursor, f"CREATE TABLE {name} ({', '.join(columns)})"
            )
            placeholders = ", ".join("?" for _ in columns)
            backend._execute(
                cursor,
                f"INSERT INTO {name} VALUES ({placeholders})",
                parameters=ordered,
                many=True,
            )
            backend.connection.commit()

    # ------------------------------------------------------------------
    # Cached-result persistence (for repro.session)
    # ------------------------------------------------------------------
    #
    # A file-backed session persists its exact (aggregates-kind) cache
    # entries as real tables plus one metadata row each, so a new
    # process pointed at the same file starts warm.  Metadata is JSON:
    # query/filter text (both round-trip through the parsers), the
    # parameter columns, and the cardinality of every base relation the
    # entry was derived from — version counters are process-local, so
    # cross-process staleness is screened by comparing cardinalities on
    # restore (a heuristic; a same-size edit slips through, which the
    # caller must accept or clear the file).

    _CACHE_INDEX_TABLE = "_repro_cache_index"

    def _ensure_cache_index(self, cursor: sqlite3.Cursor) -> None:
        self._execute(
            cursor,
            f"CREATE TABLE IF NOT EXISTS {self._CACHE_INDEX_TABLE} "
            "(table_name TEXT PRIMARY KEY, metadata TEXT)",
        )

    def persist_cached_result(
        self, table_name: str, relation: Relation, metadata: dict
    ) -> None:
        """Store one cached result as a table + metadata row.

        ``table_name`` must be a caller-generated identifier (the
        session uses ``_repro_cache_<n>``); columns are quoted, so
        parameter columns like ``$1`` are fine.
        """
        import json

        cursor = self.connection.cursor()
        self._ensure_cache_index(cursor)
        quoted = ", ".join(f'"{c}"' for c in relation.columns)
        self._execute(cursor, f'DROP TABLE IF EXISTS "{table_name}"')
        self._execute(cursor, f'CREATE TABLE "{table_name}" ({quoted})')
        placeholders = ", ".join("?" for _ in relation.columns)
        self._execute(
            cursor,
            f'INSERT INTO "{table_name}" VALUES ({placeholders})',
            parameters=sorted(relation.tuples, key=repr),
            many=True,
        )
        full = dict(metadata)
        full["columns"] = list(relation.columns)
        full["relation_name"] = relation.name
        self._execute(
            cursor,
            f"INSERT OR REPLACE INTO {self._CACHE_INDEX_TABLE} VALUES (?, ?)",
            parameters=(table_name, json.dumps(full)),
        )
        self.connection.commit()

    def list_cached_results(self) -> list[tuple[str, dict]]:
        """All persisted entries as ``(table_name, metadata)`` pairs."""
        import json

        cursor = self.connection.cursor()
        self._ensure_cache_index(cursor)
        rows = self._execute(
            cursor,
            f"SELECT table_name, metadata FROM {self._CACHE_INDEX_TABLE}",
        ).fetchall()
        return [(name, json.loads(text)) for name, text in rows]

    def load_cached_result(self, table_name: str, metadata: dict) -> Relation:
        """Materialize one persisted entry back into a Relation."""
        cursor = self.connection.cursor()
        rows = self._execute(
            cursor, f'SELECT * FROM "{table_name}"'
        ).fetchall()
        return Relation(
            metadata.get("relation_name", table_name),
            tuple(metadata["columns"]),
            {tuple(r) for r in rows},
        )

    def drop_cached_result(self, table_name: str) -> None:
        """Remove one persisted entry (table + metadata row)."""
        cursor = self.connection.cursor()
        self._ensure_cache_index(cursor)
        self._execute(cursor, f'DROP TABLE IF EXISTS "{table_name}"')
        self._execute(
            cursor,
            f"DELETE FROM {self._CACHE_INDEX_TABLE} WHERE table_name = ?",
            parameters=(table_name,),
        )
        self.connection.commit()

    # ------------------------------------------------------------------
    # Statement machinery
    # ------------------------------------------------------------------

    def _execute(
        self,
        cursor: sqlite3.Cursor,
        statement: str,
        parameters: Sequence | None = None,
        many: bool = False,
    ) -> sqlite3.Cursor:
        """Run one statement with transient-error retries and wrapping.

        Retries ride the shared :class:`~repro.recovery.RetryPolicy`
        (``locked``/``busy`` are its transient SQLite markers), with
        each backoff sleep clamped to the active guard's remaining
        wall-clock.  Anything else — and exhausted retries — raises
        :class:`EvaluationError` carrying the statement, except for a
        guard-initiated interrupt, which re-raises the guard's own
        exception.
        """
        attempt = 1
        while True:
            try:
                trip("sqlite.execute")
                if many:
                    return cursor.executemany(statement, parameters or [])
                if parameters is not None:
                    return cursor.execute(statement, parameters)
                return cursor.execute(statement)
            except sqlite3.OperationalError as error:
                if self._guard_abort:
                    # The progress handler interrupted the VM; surface
                    # the guard's exception, not "interrupted".
                    raise self._guard_abort.pop() from error
                if (
                    not self.retry_policy.is_transient(error)
                    or attempt >= self.retry_policy.max_attempts
                ):
                    raise EvaluationError(
                        f"SQLite error: {error}", sql=statement
                    ) from error
                delay = self.retry_policy.delay(attempt)
                if self._active_guard is not None:
                    delay = self._active_guard.clamp_sleep(delay)
                attempt += 1
                self._sleep(delay)
            except sqlite3.Error as error:
                raise EvaluationError(
                    f"SQLite error: {error}", sql=statement
                ) from error

    def _install_guard(self, guard: ExecutionGuard | None) -> bool:
        """Poll the guard from inside the SQLite VM loop.

        Returns True when a handler was installed (caller must remove)."""
        if guard is None:
            return False
        if guard.deadline is None and guard.cancel is None:
            return False
        self._guard_abort.clear()

        def handler() -> int:
            try:
                guard.checkpoint(node="sqlite progress handler")
            except ExecutionAborted as aborted:
                self._guard_abort.append(aborted)
                return 1  # interrupt the VM
            return 0

        self.connection.set_progress_handler(handler, _PROGRESS_OPCODES)
        return True

    def _run_script(
        self,
        script: str,
        guard: ExecutionGuard | None = None,
        step_names: tuple[str, ...] = (),
    ) -> set[tuple]:
        statements = [s.strip() for s in script.split(";") if s.strip()]
        rows: set[tuple] = set()
        cursor = self.connection.cursor()
        installed = self._install_guard(guard)
        self._active_guard = guard
        try:
            for index, statement in enumerate(statements):
                started = time.perf_counter()
                try:
                    result = self._execute(cursor, statement)
                except ExecutionAborted as aborted:
                    if guard is not None:
                        # Mark the aborted statement so the partial trace
                        # is never empty and shows where work stopped.
                        guard.note_step(
                            name=f"aborted:sql#{index}",
                            description=statement.replace("\n", " ")[:100],
                            input_tuples=0,
                            output_assignments=0,
                            seconds=time.perf_counter() - started,
                            filtered=False,
                        )
                    raise aborted
                if index == len(statements) - 1:
                    rows = {tuple(r) for r in result.fetchall()}
                elapsed = time.perf_counter() - started
                if guard is not None:
                    self._note_statement(
                        guard, statement, index, elapsed, step_names,
                        final_rows=len(rows) if index == len(statements) - 1
                        else None,
                    )
            if guard is not None:
                guard.check_answer(len(rows))
        finally:
            self._active_guard = None
            if installed:
                self.connection.set_progress_handler(None, 0)
        return rows

    def _note_statement(
        self,
        guard: ExecutionGuard,
        statement: str,
        index: int,
        elapsed: float,
        step_names: tuple[str, ...],
        final_rows: int | None,
    ) -> None:
        """Record one completed statement on the guard and enforce the
        row budget on materialized step tables."""
        created = self._created_step_table(statement, step_names)
        if created is not None:
            cursor = self.connection.cursor()
            (count,) = self._execute(
                cursor, f"SELECT COUNT(*) FROM {created}"
            ).fetchone()
            guard.note_step(
                name=created,
                description=statement.replace("\n", " ")[:100],
                input_tuples=count,
                output_assignments=count,
                seconds=elapsed,
                filtered=True,
            )
            guard.checkpoint(rows=count, node=created)
        elif final_rows is not None:
            guard.note_step(
                name="flock",
                description=statement.replace("\n", " ")[:100],
                input_tuples=final_rows,
                output_assignments=final_rows,
                seconds=elapsed,
                filtered=True,
            )
            guard.checkpoint(rows=final_rows, node="flock")
        else:
            guard.checkpoint(node=f"sql#{index}")

    @staticmethod
    def _created_step_table(
        statement: str, step_names: tuple[str, ...]
    ) -> str | None:
        tokens = statement.split(None, 3)
        if (
            len(tokens) >= 3
            and tokens[0].upper() == "CREATE"
            and tokens[1].upper() == "TABLE"
            and tokens[2] in step_names
        ):
            return tokens[2]
        return None


def evaluate_flock_sqlite(
    db: Database, flock: QueryFlock, guard: GuardLike = None
) -> Relation:
    """One-call convenience: load, evaluate naively, close."""
    with SQLiteBackend(db) as backend:
        return backend.evaluate_flock(flock, guard=guard)


def execute_plan_sqlite(
    db: Database, flock: QueryFlock, plan: QueryPlan, guard: GuardLike = None
) -> Relation:
    """One-call convenience: load, run the rewrite script, close."""
    with SQLiteBackend(db) as backend:
        return backend.execute_plan(flock, plan, guard=guard)
