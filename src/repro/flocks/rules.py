"""Association rules with the paper's three measures (Section 1.1).

The paper opens by recalling the three precise measures of association:

* **support** — "the items must appear in many baskets";
* **confidence** — "the probability of one item given that the others
  are in the basket must be high";
* **interest** — "that probability must be significantly higher or
  lower than the expected probability if items were purchased at
  random" (the beer → diapers discussion).

Frequent-itemset mining (the flock machinery) supplies the supports;
this module derives the rules.  A rule ``antecedent → consequent`` has

* ``support(rule)      = supp(antecedent ∪ {consequent}) / N``
* ``confidence(rule)   = supp(antecedent ∪ {consequent}) / supp(antecedent)``
* ``interest(rule)     = confidence(rule) / (supp({consequent}) / N)``
  (the lift ratio; 1.0 means independence, and the paper's "higher *or
  lower*" makes |interest − 1| the deviation that matters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..relational.relation import Relation
from .apriori import apriori_itemsets, baskets_as_sets


@dataclass(frozen=True)
class AssociationRule:
    """One mined rule with all three Section 1.1 measures."""

    antecedent: frozenset
    consequent: object
    support_count: int
    support: float
    confidence: float
    interest: float

    @property
    def itemset(self) -> frozenset:
        return self.antecedent | {self.consequent}

    def is_interesting(self, min_deviation: float = 0.0) -> bool:
        """The paper's two-sided notion: probability "significantly
        higher or lower" than independence."""
        return abs(self.interest - 1.0) >= min_deviation

    def __str__(self) -> str:
        items = ", ".join(sorted(map(str, self.antecedent)))
        return (
            f"{{{items}}} -> {self.consequent} "
            f"[supp={self.support:.3f}, conf={self.confidence:.3f}, "
            f"interest={self.interest:.2f}]"
        )


def mine_association_rules(
    baskets: Relation,
    min_support: int,
    min_confidence: float = 0.0,
    min_interest_deviation: float = 0.0,
    max_itemset_size: int | None = None,
) -> list[AssociationRule]:
    """Mine rules from a ``baskets(BID, Item)`` relation.

    Rules are generated from every frequent itemset of size >= 2 by
    holding out each member as the consequent; they are then filtered
    by confidence and by two-sided interest deviation.  Results are
    sorted by (confidence, support) descending for stable presentation.
    """
    n_baskets = len(baskets_as_sets(baskets))
    if n_baskets == 0:
        return []
    levels = apriori_itemsets(baskets, min_support, max_size=max_itemset_size)
    if not levels:
        return []
    singles = levels.get(1, {})

    def count_of(itemset: frozenset) -> int | None:
        level = levels.get(len(itemset))
        if level is None:
            return None
        return level.get(itemset)

    rules: list[AssociationRule] = []
    for size, itemsets in levels.items():
        if size < 2:
            continue
        for itemset, count in itemsets.items():
            for consequent in itemset:
                antecedent = itemset - {consequent}
                antecedent_count = count_of(antecedent)
                if antecedent_count is None:
                    # The antecedent is itself frequent whenever the
                    # itemset is (downward closure), so this cannot
                    # happen for complete levels; guard anyway.
                    continue
                consequent_count = singles.get(frozenset((consequent,)))
                if consequent_count is None:
                    continue
                confidence = count / antecedent_count
                consequent_probability = consequent_count / n_baskets
                interest = (
                    confidence / consequent_probability
                    if consequent_probability
                    else 0.0
                )
                rule = AssociationRule(
                    antecedent=antecedent,
                    consequent=consequent,
                    support_count=count,
                    support=count / n_baskets,
                    confidence=confidence,
                    interest=interest,
                )
                if rule.confidence < min_confidence:
                    continue
                if not rule.is_interesting(min_interest_deviation):
                    continue
                rules.append(rule)

    rules.sort(key=lambda r: (-r.confidence, -r.support, str(r.consequent)))
    return rules


def rules_for_consequent(
    rules: Iterable[AssociationRule], consequent: object
) -> list[AssociationRule]:
    """Filter mined rules by their right-hand side (e.g. all rules that
    predict 'diapers')."""
    return [r for r in rules if r.consequent == consequent]
