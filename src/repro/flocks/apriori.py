"""Classic a-priori itemset mining ([AIS93], [AS94]) — the baseline.

The paper's central claim is that the a-priori trick is a *special case*
of query-flock plan generation (Section 4.3, heuristic 2 and footnote 3:
"compute candidate sets of k items by restricting to those itemsets such
that each subset of k-1 items previously has met the support test").
This module provides both sides of that equivalence:

* :func:`apriori_itemsets` — the classic level-wise algorithm written
  as a direct "ad-hoc file processing" implementation over the baskets
  relation (hash counting, candidate generation, pruning), the style the
  paper concedes outperforms DBMS execution;
* :func:`itemset_flock` — the query flock asking the same question for
  a fixed k (the Fig. 2 flock generalized to k parameters);
* :func:`itemset_plan` — the legal query plan whose steps mirror the
  level-wise algorithm for k = 2 (frequent items first, then pairs).

Property tests assert all three agree on every database.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

from ..datalog.atoms import atom, comparison
from ..datalog.query import rule
from ..datalog.subqueries import SubqueryCandidate
from ..relational.relation import Relation
from .filters import support_filter
from .flock import QueryFlock
from .plans import QueryPlan, plan_from_subqueries


def baskets_as_sets(baskets: Relation) -> dict[object, frozenset]:
    """Group the ``baskets(BID, Item)`` relation into per-basket item sets."""
    bid_pos = baskets.column_position(baskets.columns[0])
    item_pos = baskets.column_position(baskets.columns[1])
    grouped: dict[object, set] = defaultdict(set)
    for row in baskets.tuples:
        grouped[row[bid_pos]].add(row[item_pos])
    return {bid: frozenset(items) for bid, items in grouped.items()}


def apriori_itemsets(
    baskets: Relation,
    support: int,
    max_size: int | None = None,
) -> dict[int, dict[frozenset, int]]:
    """Level-wise frequent-itemset mining.

    Args:
        baskets: a binary relation (basket id, item).
        support: minimum number of baskets containing the itemset.
        max_size: stop after itemsets of this size (None = run dry).

    Returns:
        ``{k: {itemset: support_count}}`` for every frequent itemset.
    """
    transactions = list(baskets_as_sets(baskets).values())

    # L1: frequent single items — the paper's "eliminate most of the
    # tuples in the baskets relation before we do the hard part".
    item_counts: dict[object, int] = defaultdict(int)
    for txn in transactions:
        for item in txn:
            item_counts[item] += 1
    current: dict[frozenset, int] = {
        frozenset((item,)): count
        for item, count in item_counts.items()
        if count >= support
    }
    levels: dict[int, dict[frozenset, int]] = {}
    if current:
        levels[1] = current

    k = 2
    while current and (max_size is None or k <= max_size):
        candidates = _generate_candidates(set(current), k)
        if not candidates:
            break
        counts: dict[frozenset, int] = defaultdict(int)
        for txn in transactions:
            if len(txn) < k:
                continue
            for candidate in candidates:
                if candidate <= txn:
                    counts[candidate] += 1
        current = {s: c for s, c in counts.items() if c >= support}
        if current:
            levels[k] = current
        k += 1
    return levels


def _generate_candidates(
    frequent: set[frozenset], k: int
) -> set[frozenset]:
    """Join step + prune step of [AS94]: merge (k-1)-sets sharing k-2
    items, keep only candidates whose every (k-1)-subset is frequent."""
    frequent_list = sorted(frequent, key=lambda s: sorted(map(repr, s)))
    candidates: set[frozenset] = set()
    for i, a in enumerate(frequent_list):
        for b in frequent_list[i + 1:]:
            union = a | b
            if len(union) != k:
                continue
            if all(frozenset(sub) in frequent for sub in combinations(union, k - 1)):
                candidates.add(union)
    return candidates


def frequent_pairs(baskets: Relation, support: int) -> set[frozenset]:
    """Just the frequent 2-itemsets (the Fig. 1 / Fig. 2 question)."""
    return set(apriori_itemsets(baskets, support, max_size=2).get(2, {}))


# ----------------------------------------------------------------------
# The flock side of the equivalence
# ----------------------------------------------------------------------


def itemset_flock(
    k: int,
    support: int,
    relation_name: str = "baskets",
    ordered: bool = True,
) -> QueryFlock:
    """The Fig. 2 flock generalized to ``k`` items.

    ``ordered=True`` adds the Section 2.3 tie-breaks ``$1 < $2 < ...``
    so each itemset appears once, in lexicographic order.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    body = [atom(relation_name, "B", f"${i + 1}") for i in range(k)]
    if ordered:
        for i in range(1, k):
            body.append(comparison(f"${i}", "<", f"${i + 1}"))
    query = rule("answer", ["B"], body)
    return QueryFlock(query, support_filter(support, target="B"))


def itemset_plan(flock: QueryFlock) -> QueryPlan:
    """The a-priori plan for the pair flock: one pre-filter per
    parameter (frequent items), then the full query — exactly the
    rewrite the paper reports as a 20-fold speedup in Section 1.3."""
    rule_ = flock.rules[0]
    chosen: list[tuple[str, SubqueryCandidate]] = []
    positives = rule_.positive_atoms()
    for index, sg in enumerate(positives):
        params = sg.parameters()
        if not params:
            continue
        sub = rule_.with_body_subset([index])
        name = "okItem" + "".join(sorted(p.name for p in params))
        chosen.append((name, SubqueryCandidate((index,), sub)))
    return plan_from_subqueries(flock, chosen)


def itemsets_from_flock_result(result: Relation) -> set[frozenset]:
    """Convert a flock result over ($1..$k) into itemsets for comparison
    with :func:`apriori_itemsets`."""
    return {frozenset(row) for row in result.tuples}
