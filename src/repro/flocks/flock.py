"""The query-flock model (Section 2).

A :class:`QueryFlock` is the paper's four-part specification:

1. data predicates (implicit: whatever relations the query references);
2. a set of parameters (the ``$``-terms of the query);
3. a parametrized query (an extended CQ or a union of them);
4. a filter on the query result.

"Remember: a query flock is a query about its parameters."  The result
of a flock is a relation over the parameters — one tuple per acceptable
assignment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import FilterError, ParseError
from ..datalog.parser import parse_query
from ..datalog.query import ConjunctiveQuery, FlockQuery, UnionQuery, as_union
from ..datalog.safety import assert_safe
from ..datalog.terms import Parameter
from .filters import AnyFilter, iter_conditions, parse_filter


@dataclass(frozen=True)
class QueryFlock:
    """A parametrized query plus a filter — the unit of mining.

    Construction validates that the query is safe and that the filter
    refers to the query's head predicate.  The parameter tuple is
    ordered by name for a deterministic result schema.  The filter may
    be a single :class:`FilterCondition` or a
    :class:`~repro.flocks.filters.CompositeFilter` conjunction.
    """

    query: FlockQuery
    filter: AnyFilter

    def __post_init__(self) -> None:
        assert_safe(self.query)
        head = as_union(self.query).head_name
        if self.filter.relation_name != head:
            raise FilterError(
                f"filter refers to {self.filter.relation_name!r} but the "
                f"query head is {head!r}"
            )
        from ..relational.aggregates import AggregateFunction

        for condition in iter_conditions(self.filter):
            if (
                isinstance(self.query, ConjunctiveQuery)
                and condition.target != "*"
            ):
                head_columns = {str(t) for t in self.query.head_terms}
                if condition.target not in head_columns:
                    raise FilterError(
                        f"filter target {condition.target!r} is not a head "
                        "term of the query (head terms: "
                        f"{sorted(head_columns)})"
                    )
            if isinstance(self.query, UnionQuery) and condition.target != "*":
                # Union branches may use different head variable names
                # (Fig. 4 counts answers that are anchor IDs or document
                # IDs), so a named target is ambiguous; the paper uses
                # COUNT(answer(*)) there.
                raise FilterError(
                    "union flocks require a '*' filter target, e.g. "
                    "COUNT(answer(*)) >= t"
                )
            if (
                condition.aggregate is AggregateFunction.COUNT
                and condition.passes(0)
            ):
                # A filter satisfied by an empty answer would make every
                # assignment in the (unbounded) parameter domain
                # acceptable; the paper's support filters always demand
                # at least one witness tuple.
                raise FilterError(
                    f"filter {condition} accepts an empty answer relation; "
                    "the flock result would be the entire parameter domain"
                )
        for rule in as_union(self.query).rules:
            missing = as_union(self.query).parameters() - rule.parameters()
            if missing:
                names = ", ".join(sorted(str(p) for p in missing))
                raise FilterError(
                    f"rule '{rule}' does not mention parameter(s) {names}; "
                    "every rule of a flock must bind every parameter"
                )

    # ------------------------------------------------------------------

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        """The flock's parameters, sorted by name (the result schema)."""
        return tuple(
            sorted(as_union(self.query).parameters(), key=lambda p: p.name)
        )

    @property
    def parameter_columns(self) -> tuple[str, ...]:
        """Result column names: the rendered parameters (``$1``, ``$s``)."""
        return tuple(str(p) for p in self.parameters)

    @property
    def is_union(self) -> bool:
        return isinstance(self.query, UnionQuery)

    @property
    def rules(self) -> tuple[ConjunctiveQuery, ...]:
        return as_union(self.query).rules

    def predicates(self) -> frozenset[str]:
        """The data relations the flock reads."""
        return as_union(self.query).predicates()

    def __str__(self) -> str:
        return f"QUERY:\n{self.query}\n\nFILTER:\n{self.filter}"


_SECTION_RE = re.compile(
    r"QUERY\s*:\s*(?P<query>.*?)\s*FILTER\s*:\s*(?P<filter>.*?)\s*$",
    re.DOTALL | re.IGNORECASE,
)


def parse_flock(text: str, assume_nonnegative: bool = True) -> QueryFlock:
    """Parse the paper's two-section flock notation (Figs. 2, 3, 4, 10)::

        QUERY:
        answer(B) :- baskets(B,$1) AND baskets(B,$2)

        FILTER:
        COUNT(answer.B) >= 20
    """
    match = _SECTION_RE.search(text)
    if match is None:
        raise ParseError(
            "flock text must contain 'QUERY:' and 'FILTER:' sections",
            text=text,
        )
    query = parse_query(match.group("query"))
    condition = parse_filter(
        match.group("filter"), assume_nonnegative=assume_nonnegative
    )
    return QueryFlock(query, condition)
