"""Dynamic selection of filter steps (Section 4.4).

Instead of fixing the FILTER steps in advance, the dynamic strategy
lowers the flock's rule to the same physical plan every other strategy
runs (:func:`repro.engine.planner.lower_rule`), then *watches the sizes
of intermediate relations* while interpreting its stages and decides
after each join whether inserting a FILTER step would pay:

* when a set of parameters appears for the first time (including the
  single-subgoal leaves), compare the number of tuples per parameter
  assignment with the support threshold — **low** means many assignments
  will be eliminated, so filter; **high** means filtering would remove
  little, so skip;
* when the same parameter set has been seen before, filter only if the
  tuples-per-assignment ratio dropped significantly since the last
  filter opportunity for that set;
* the root must always be filtered — that final FILTER *is* the flock's
  answer.

Watching sizes enables one more dynamic move the static strategies
cannot make: when the observed size of an intermediate relation
diverges badly from the stage's estimate, the *remaining* stages are
re-planned from the observed size
(:func:`repro.engine.planner.complete_order`) and the evaluator swaps
in the re-lowered plan suffix — same IR, new operator order.

A filter step is sound here for the same reason as in the static case:
the subgoals joined so far form a safe subquery of the flock query (the
evaluator only offers the decision when the filter's count target is
bound), so its per-assignment answer set is a superset of the full
query's and a monotone filter that fails on it fails on the whole flock.

The evaluator returns the flock result, a decision log, and a rendered
plan in the Fig. 9 style showing which joins and FILTERs actually ran.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..analysis.verification import plan_verification_enabled
from ..errors import FilterError, PlanError
from ..datalog.atoms import RelationalAtom
from ..datalog.query import ConjunctiveQuery
from ..datalog.safety import assert_safe
from ..engine.ir import CompareFilter, JoinStage, PhysicalPlan
from ..engine.memory import MemoryEngine
from ..engine.planner import complete_order, lower_rule
from ..guard import GuardLike, as_guard
from ..relational.catalog import Database
from ..relational.operators import semi_join
from ..relational.relation import Relation
from .filters import STAR, iter_conditions, plan_aggregate_specs
from .flock import QueryFlock
from .result import FlockResult

if TYPE_CHECKING:
    from ..analysis.certify import BranchCertificate


@dataclass(frozen=True)
class DynamicDecision:
    """One filter/don't-filter decision at a node of the join tree."""

    node: str
    parameter_columns: tuple[str, ...]
    tuples_per_assignment: float
    filtered: bool
    reason: str
    size_before: int
    size_after: int

    def __str__(self) -> str:
        verdict = "FILTER" if self.filtered else "skip"
        params = ",".join(self.parameter_columns) or "-"
        return (
            f"{verdict:6s} at {self.node} [params {params}] "
            f"ratio={self.tuples_per_assignment:.2f} "
            f"{self.size_before} -> {self.size_after} tuples ({self.reason})"
        )


@dataclass
class DynamicTrace:
    """The full decision log plus the executed step list (Fig. 9 form).

    With plan verification on (see :mod:`repro.analysis.verification`),
    ``certificates`` carries one
    :class:`~repro.analysis.certify.BranchCertificate` per FILTER
    actually applied — the safety report and containment witness of the
    in-flight safe subquery, making dynamic decisions as auditable as a
    static plan's pre-filter steps.
    """

    decisions: list[DynamicDecision] = field(default_factory=list)
    plan_lines: list[str] = field(default_factory=list)
    seconds: float = 0.0
    certificates: tuple["BranchCertificate", ...] = ()

    def filters_applied(self) -> int:
        return sum(1 for d in self.decisions if d.filtered)

    def render_plan(self) -> str:
        return "\n".join(self.plan_lines)

    def __str__(self) -> str:
        return "\n".join(str(d) for d in self.decisions)


class DynamicEvaluator:
    """Evaluates a single-rule flock with size-driven FILTER insertion.

    Args:
        decision_factor: filter a *new* parameter set when its
            tuples-per-assignment ratio is below
            ``decision_factor * threshold`` (the paper wants the ratio
            "somewhat below" the threshold; 1.0 reproduces the literal
            comparison with the support level).
        improvement_factor: filter an *already-seen* parameter set when
            the ratio fell below ``improvement_factor`` times the best
            ratio observed for that set.
    """

    #: Re-plan the remaining stages when the observed size of an
    #: intermediate relation is off from the stage estimate by this
    #: factor in either direction (and at least two stages remain).
    REPLAN_FACTOR = 4.0

    def __init__(
        self,
        db: Database,
        flock: QueryFlock,
        decision_factor: float = 1.0,
        improvement_factor: float = 0.5,
        guard: GuardLike = None,
        sink=None,
        parallel=None,
    ):
        if flock.is_union:
            raise PlanError("dynamic evaluation handles single-rule flocks")
        if not flock.filter.is_monotone:
            raise FilterError(
                f"dynamic filtering needs a monotone filter, got {flock.filter}"
            )
        self.db = db
        self.flock = flock
        self.guard = as_guard(guard)
        #: Optional session sink: every FILTER decision that actually
        #: filters materializes the exact survivor set of the safe
        #: subquery absorbed so far — instead of discarding it, publish
        #: it so later sessions can reuse it as a pruning bound.
        self.sink = sink
        #: Optional :class:`~repro.engine.parallel.ParallelExecutor`:
        #: in-flight FILTER decisions group-filter their relation in
        #: hash partitions, and the observed partition sizes are logged
        #: on the trace (the same observations the re-planner consumes).
        self.parallel = parallel
        self._last_partition_sizes: tuple[int, ...] | None = None
        self.rule: ConjunctiveQuery = flock.rules[0]
        assert_safe(self.rule)
        self.decision_factor = decision_factor
        self.improvement_factor = improvement_factor
        self._param_cols = set(flock.parameter_columns)
        self._conditions = iter_conditions(flock.filter)
        self._decision_threshold = self._pick_decision_threshold()
        self._engine = MemoryEngine(db, guard=guard, trip_site="dynamic.join")

    def _pick_decision_threshold(self) -> float:
        """The threshold the tuples-per-assignment ratio compares with:
        the support (COUNT lower-bound) conjunct when present, else the
        first conjunct's threshold."""
        for condition in self._conditions:
            if condition.is_support_condition:
                return float(condition.threshold)
        return float(self._conditions[0].threshold)

    def _condition_targets(self, relation: Relation):
        """Per-condition target columns within ``relation``, or None
        when some condition's target is not yet bound."""
        head_cols = [str(t) for t in self.rule.head_terms]
        resolved: dict = {}
        for condition in self._conditions:
            if condition.target == STAR:
                targets = head_cols
            else:
                targets = [condition.target]
            if not all(c in relation.columns for c in targets):
                return None
            resolved[condition] = targets
        return resolved

    # ------------------------------------------------------------------

    def evaluate(
        self,
        join_order: list[int] | None = None,
        order_strategy: str = "greedy",
    ) -> FlockResult:
        """Run the dynamic strategy; returns result + :class:`DynamicTrace`
        (exposed as ``result.trace`` is the static type, so the dynamic
        trace is returned via :attr:`last_trace`).

        ``order_strategy`` selects the join order when ``join_order`` is
        not given: ``"greedy"`` (default), ``"selinger"`` (the [G*79]
        DP orderer — the paper: "Any of a number of models and
        approaches to selecting this join order may be used, our idea is
        independent of how the join order is actually chosen"), or
        ``"ues"`` (the pessimistic bound-minimal order).  With no
        explicit ``join_order``, the remaining stages may be re-planned
        mid-flight when observed sizes diverge from the estimates (or
        from the guaranteed bounds, whichever is tighter).
        """
        started = time.perf_counter()
        trace = DynamicTrace()
        positives = self.rule.positive_atoms()
        if not positives:
            raise PlanError("flock query has no positive subgoals")
        plan = lower_rule(
            self.db,
            self.rule,
            join_order=join_order,
            order_strategy=order_strategy,
        )
        # Body indices per subgoal, so each FILTER decision knows the
        # exact safe subquery it materialized (for the session cache).
        positive_body_idx = [
            i for i, sg in enumerate(self.rule.body)
            if isinstance(sg, RelationalAtom) and not sg.negated
        ]
        absorbed: set[int] = set()
        best_ratio_per_set: dict[frozenset[str], float] = {}

        current: Relation | None = None
        temp_counter = 0
        position = 0
        while position < len(plan.stages):
            stage = plan.stages[position]
            atom = stage.scan.atom
            leaf = self._engine.scan_atom(atom)
            leaf_name = str(atom)
            atom_idx = plan.order[position]
            # Leaf-level decision (the Fig. 8 leaves: okS on exhibits).
            leaf = self._maybe_filter(
                leaf, leaf_name, trace, best_ratio_per_set, force=False,
                subquery_indices=(positive_body_idx[atom_idx],),
            )
            was_joined = current is not None
            join_name = f"temp{temp_counter}"
            current = self._engine.run_stage(
                current, stage, leaf=leaf, join_name=join_name
            )
            if was_joined:
                temp_counter += 1
                trace.plan_lines.append(
                    f"{join_name}({', '.join(stage.join.columns)}) := "
                    f"JOIN with {leaf_name}"
                )
            absorbed.add(positive_body_idx[atom_idx])
            for op in stage.filters:
                body_index = self._filter_body_index(op)
                if body_index is not None:
                    absorbed.add(body_index)
            is_root = position == len(plan.stages) - 1
            if not is_root and current.name.startswith("temp"):
                current = self._maybe_filter(
                    current,
                    current.name,
                    trace,
                    best_ratio_per_set,
                    force=False,
                    subquery_indices=tuple(sorted(absorbed)),
                )
            if join_order is None and not is_root:
                plan = self._maybe_replan(
                    plan, position, stage, current, trace
                )
            position += 1

        assert current is not None
        for op in plan.unit_filters:
            current = self._engine.apply_filter(current, op)

        # The root: "We must filter at the root, simply because that
        # filtering is necessary to find the answer to the query flock."
        result = self._final_filter(current, trace)
        trace.seconds = time.perf_counter() - started
        self.last_trace = trace
        if self.guard is not None:
            self.guard.check_answer(len(result))
        return FlockResult(
            result,
            stage_rows=tuple(self._engine.stage_log),
            runtime_filter_rows_pruned=self._engine.rows_pruned,
        )

    # ------------------------------------------------------------------

    def _filter_body_index(self, op) -> int | None:
        """The body index of a stage filter's subgoal (comparison or
        negated atom), for safe-subquery bookkeeping."""
        subgoal = op.comparison if isinstance(op, CompareFilter) else op.atom
        for i, sg in enumerate(self.rule.body):
            if sg is subgoal:
                return i
        for i, sg in enumerate(self.rule.body):
            if sg == subgoal:
                return i
        return None

    def _maybe_replan(
        self,
        plan: PhysicalPlan,
        position: int,
        stage: JoinStage,
        current: Relation,
        trace: DynamicTrace,
    ) -> PhysicalPlan:
        """Swap in a re-lowered plan suffix when the observed size of
        the running result diverges from the stage's estimate.

        The executed prefix is kept (its stages and filter placements
        are deterministic given the order prefix, so the re-lowered plan
        agrees with what already ran); only the remaining join order
        changes, re-ordered greedily from the *observed* size.
        """
        if len(plan.stages) - position - 1 < 2:
            return plan
        # Compare the observation against the tighter of the System-R
        # estimate and the guaranteed UES bound: an in-flight filter (or
        # a runtime scan filter) that proved far more selective than the
        # bound is exactly the signal the remaining order should exploit.
        reference = float(stage.estimate)
        if stage.bound is not None:
            reference = min(reference, float(stage.bound))
        estimate = max(reference, 1.0)
        observed = float(max(len(current), 1))
        if max(observed / estimate, estimate / observed) < self.REPLAN_FACTOR:
            return plan
        positives = self.rule.positive_atoms()
        prefix = list(plan.order[: position + 1])
        new_order = complete_order(self.db, positives, prefix, len(current))
        if new_order == list(plan.order):
            return plan
        trace.plan_lines.append(
            f"replan: join order {list(plan.order)} -> {new_order} "
            f"(observed {len(current)} vs ~{estimate:.0f} tuples)"
        )
        return lower_rule(self.db, self.rule, join_order=new_order)

    def _maybe_filter(
        self,
        relation: Relation,
        node: str,
        trace: DynamicTrace,
        best_ratio_per_set: dict[frozenset[str], float],
        force: bool,
        subquery_indices: tuple[int, ...] = (),
    ) -> Relation:
        params = tuple(c for c in relation.columns if c in self._param_cols)
        targets = self._condition_targets(relation)
        if not params or targets is None:
            return relation

        assignments = len(relation.project(list(params)))
        ratio = len(relation) / assignments if assignments else 0.0
        key = frozenset(params)
        threshold = self._decision_threshold

        seen_before = key in best_ratio_per_set
        if not seen_before:
            should = force or ratio < threshold * self.decision_factor
            reason = (
                f"new parameter set; ratio {ratio:.2f} "
                f"{'<' if should else '>='} {threshold * self.decision_factor:.2f}"
            )
        else:
            previous = best_ratio_per_set[key]
            should = force or ratio < previous * self.improvement_factor
            reason = (
                f"seen before (best ratio {previous:.2f}); ratio {ratio:.2f} "
                f"{'dropped enough' if should else 'not significantly lower'}"
            )
        best_ratio_per_set[key] = min(ratio, best_ratio_per_set.get(key, ratio))

        if not should:
            trace.decisions.append(
                DynamicDecision(node, params, ratio, False, reason,
                                len(relation), len(relation))
            )
            return relation

        if subquery_indices:
            self._certify_decision(node, subquery_indices, trace)
        filter_started = time.perf_counter()
        filtered, ok = self._filter_relation(relation, params, targets)
        if self._last_partition_sizes is not None:
            trace.plan_lines.append(
                f"partitioned filter at {node}: observed partition sizes "
                f"{list(self._last_partition_sizes)}"
            )
        if self.sink is not None and subquery_indices:
            # The survivors are exact for the safe subquery made of the
            # subgoals absorbed so far (earlier in-flight filters only
            # removed assignments that provably fail here too, by
            # monotonicity) — publish them for cross-query reuse.
            subquery = self.rule.with_body_subset(sorted(subquery_indices))
            self.sink.publish_step(subquery, list(params), ok, len(relation))
        trace.decisions.append(
            DynamicDecision(node, params, ratio, True, reason,
                            len(relation), len(filtered))
        )
        trace.plan_lines.append(
            f"{node} := FILTER(({', '.join(params)}), "
            f"{self.flock.filter})"
        )
        if self.guard is not None:
            self.guard.note_step(
                name=f"filter:{node}",
                description=f"FILTER({self.flock.filter})",
                input_tuples=len(relation),
                output_assignments=len(filtered),
                seconds=time.perf_counter() - filter_started,
                filtered=True,
            )
        return filtered

    def _certify_decision(
        self,
        node: str,
        subquery_indices: tuple[int, ...],
        trace: DynamicTrace,
    ) -> None:
        """Certify one in-flight FILTER when plan verification is on.

        The subgoals absorbed so far must form a safe subquery with a
        containment witness over the flock rule — the same legality
        argument a static pre-filter step carries — and the certificate
        must re-validate before the filter is allowed to prune.
        """
        if not plan_verification_enabled():
            return
        from ..analysis.certify import certify_step_bound

        certificate = certify_step_bound(
            self.rule, subquery_indices, node
        )
        report = certificate.verify()
        if not report.ok:
            details = "; ".join(str(d) for d in report.errors)
            raise PlanError(
                f"dynamic FILTER at {node} is not certified legal: {details}"
            )
        trace.certificates = trace.certificates + (certificate,)

    def _filter_relation(
        self,
        relation: Relation,
        params: tuple[str, ...],
        targets: dict,
    ) -> tuple[Relation, Relation]:
        """Group by ``params``, apply the flock filter (all conjuncts),
        keep surviving rows.  Returns (filtered relation, ok-relation)."""
        aggregates, conditions = plan_aggregate_specs(
            self.flock.filter, lambda condition: targets[condition]
        )
        passed = self._grouped_survivors(
            relation, list(params), aggregates, conditions, "ok"
        )
        ok = self._engine.project_unique(passed, list(params), "ok")
        return semi_join(relation, ok, name=relation.name), ok

    def _grouped_survivors(
        self, relation, params, aggregates, conditions, name
    ):
        """Group-filter one in-flight relation, partitioned when the
        parallel executor finds it worthwhile (large input, usable key);
        serial otherwise.  The partition sizes observed — the evaluator's
        re-planning signal at this node — are kept for the trace."""
        self._last_partition_sizes = None
        if self.parallel is not None:
            partitioned = self.parallel.group_filter_parallel(
                relation, params, aggregates, conditions, name=name
            )
            if partitioned is not None:
                passed, sizes = partitioned
                self._last_partition_sizes = sizes
                return passed
        return self._engine.group_filter(
            relation, params, aggregates, conditions, name=name
        )

    def _final_filter(self, current: Relation, trace: DynamicTrace) -> Relation:
        params = list(self.flock.parameter_columns)
        targets = self._condition_targets(current)
        if targets is None:
            raise PlanError(
                "filter target column never became bound; cannot finish"
            )
        # The root filter is over the whole rule — its certificate is
        # the identity containment (Section 4.2 rule 4 in plan form).
        self._certify_decision(
            "root", tuple(range(len(self.rule.body))), trace
        )
        aggregates, conditions = plan_aggregate_specs(
            self.flock.filter, lambda condition: targets[condition]
        )
        passed = self._grouped_survivors(
            current, params, aggregates, conditions, "flock"
        )
        if self._last_partition_sizes is not None:
            trace.plan_lines.append(
                f"partitioned filter at root: observed partition sizes "
                f"{list(self._last_partition_sizes)}"
            )
        if self.sink is not None:
            self.sink.publish_final(passed, len(current))
        result = self._engine.project_unique(passed, params, "flock")
        trace.plan_lines.append(
            f"flock({', '.join(params)}) := FILTER(({', '.join(params)}), "
            f"{self.flock.filter})"
        )
        trace.decisions.append(
            DynamicDecision(
                "root",
                tuple(params),
                0.0,
                True,
                "root filter is the flock answer",
                len(current),
                len(result),
            )
        )
        return result


def evaluate_flock_dynamic(
    db: Database,
    flock: QueryFlock,
    decision_factor: float = 1.0,
    improvement_factor: float = 0.5,
    join_order: list[int] | None = None,
    guard: GuardLike = None,
    sink=None,
    order_strategy: str = "greedy",
    parallel=None,
) -> tuple[FlockResult, DynamicTrace]:
    """One-call dynamic evaluation; returns (result, trace)."""
    evaluator = DynamicEvaluator(
        db, flock, decision_factor=decision_factor,
        improvement_factor=improvement_factor, guard=guard, sink=sink,
        parallel=parallel,
    )
    result = evaluator.evaluate(
        join_order=join_order, order_strategy=order_strategy
    )
    return result, evaluator.last_trace
