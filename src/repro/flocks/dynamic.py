"""Dynamic selection of filter steps (Section 4.4).

Instead of fixing the FILTER steps in advance, the dynamic strategy
chooses a join order, then *watches the sizes of intermediate relations*
and decides after each join whether inserting a FILTER step would pay:

* when a set of parameters appears for the first time (including the
  single-subgoal leaves), compare the number of tuples per parameter
  assignment with the support threshold — **low** means many assignments
  will be eliminated, so filter; **high** means filtering would remove
  little, so skip;
* when the same parameter set has been seen before, filter only if the
  tuples-per-assignment ratio dropped significantly since the last
  filter opportunity for that set;
* the root must always be filtered — that final FILTER *is* the flock's
  answer.

A filter step is sound here for the same reason as in the static case:
the subgoals joined so far form a safe subquery of the flock query (the
evaluator only offers the decision when the filter's count target is
bound), so its per-assignment answer set is a superset of the full
query's and a monotone filter that fails on it fails on the whole flock.

The evaluator returns the flock result, a decision log, and a rendered
plan in the Fig. 9 style showing which joins and FILTERs actually ran.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import FilterError, PlanError
from ..datalog.atoms import Comparison, RelationalAtom
from ..datalog.query import ConjunctiveQuery
from ..datalog.safety import assert_safe
from ..guard import ExecutionGuard, GuardLike, as_guard
from ..relational.catalog import Database
from ..relational.evaluate import (
    atom_binding_relation,
    greedy_join_order,
    term_column,
)
from ..relational.operators import natural_join, semi_join
from ..relational.relation import Relation
from ..testing.faults import trip
from .filters import (
    STAR,
    iter_conditions,
    surviving_assignments,
    surviving_with_aggregates,
)
from .flock import QueryFlock
from .result import FlockResult


@dataclass(frozen=True)
class DynamicDecision:
    """One filter/don't-filter decision at a node of the join tree."""

    node: str
    parameter_columns: tuple[str, ...]
    tuples_per_assignment: float
    filtered: bool
    reason: str
    size_before: int
    size_after: int

    def __str__(self) -> str:
        verdict = "FILTER" if self.filtered else "skip"
        params = ",".join(self.parameter_columns) or "-"
        return (
            f"{verdict:6s} at {self.node} [params {params}] "
            f"ratio={self.tuples_per_assignment:.2f} "
            f"{self.size_before} -> {self.size_after} tuples ({self.reason})"
        )


@dataclass
class DynamicTrace:
    """The full decision log plus the executed step list (Fig. 9 form)."""

    decisions: list[DynamicDecision] = field(default_factory=list)
    plan_lines: list[str] = field(default_factory=list)
    seconds: float = 0.0

    def filters_applied(self) -> int:
        return sum(1 for d in self.decisions if d.filtered)

    def render_plan(self) -> str:
        return "\n".join(self.plan_lines)

    def __str__(self) -> str:
        return "\n".join(str(d) for d in self.decisions)


class DynamicEvaluator:
    """Evaluates a single-rule flock with size-driven FILTER insertion.

    Args:
        decision_factor: filter a *new* parameter set when its
            tuples-per-assignment ratio is below
            ``decision_factor * threshold`` (the paper wants the ratio
            "somewhat below" the threshold; 1.0 reproduces the literal
            comparison with the support level).
        improvement_factor: filter an *already-seen* parameter set when
            the ratio fell below ``improvement_factor`` times the best
            ratio observed for that set.
    """

    def __init__(
        self,
        db: Database,
        flock: QueryFlock,
        decision_factor: float = 1.0,
        improvement_factor: float = 0.5,
        guard: GuardLike = None,
        sink=None,
    ):
        if flock.is_union:
            raise PlanError("dynamic evaluation handles single-rule flocks")
        if not flock.filter.is_monotone:
            raise FilterError(
                f"dynamic filtering needs a monotone filter, got {flock.filter}"
            )
        self.db = db
        self.flock = flock
        self.guard = as_guard(guard)
        #: Optional session sink: every FILTER decision that actually
        #: filters materializes the exact survivor set of the safe
        #: subquery absorbed so far — instead of discarding it, publish
        #: it so later sessions can reuse it as a pruning bound.
        self.sink = sink
        self.rule: ConjunctiveQuery = flock.rules[0]
        assert_safe(self.rule)
        self.decision_factor = decision_factor
        self.improvement_factor = improvement_factor
        self._param_cols = set(flock.parameter_columns)
        self._conditions = iter_conditions(flock.filter)
        self._decision_threshold = self._pick_decision_threshold()

    def _pick_decision_threshold(self) -> float:
        """The threshold the tuples-per-assignment ratio compares with:
        the support (COUNT lower-bound) conjunct when present, else the
        first conjunct's threshold."""
        for condition in self._conditions:
            if condition.is_support_condition:
                return float(condition.threshold)
        return float(self._conditions[0].threshold)

    def _condition_targets(self, relation: Relation):
        """Per-condition target columns within ``relation``, or None
        when some condition's target is not yet bound."""
        head_cols = [str(t) for t in self.rule.head_terms]
        resolved: dict = {}
        for condition in self._conditions:
            if condition.target == STAR:
                targets = head_cols
            else:
                targets = [condition.target]
            if not all(c in relation.columns for c in targets):
                return None
            resolved[condition] = targets
        return resolved

    # ------------------------------------------------------------------

    def evaluate(
        self,
        join_order: list[int] | None = None,
        order_strategy: str = "greedy",
    ) -> FlockResult:
        """Run the dynamic strategy; returns result + :class:`DynamicTrace`
        (exposed as ``result.trace`` is the static type, so the dynamic
        trace is returned via :attr:`last_trace`).

        ``order_strategy`` selects the join order when ``join_order`` is
        not given: ``"greedy"`` (default) or ``"selinger"`` (the [G*79]
        DP orderer — the paper: "Any of a number of models and
        approaches to selecting this join order may be used, our idea is
        independent of how the join order is actually chosen").
        """
        started = time.perf_counter()
        trace = DynamicTrace()
        positives = self.rule.positive_atoms()
        if join_order is not None:
            order = join_order
        elif order_strategy == "selinger":
            from ..relational.joinorder import selinger_join_order

            order = selinger_join_order(self.db, positives)
        else:
            order = greedy_join_order(self.db, positives)
        # Body indices per subgoal category, so each FILTER decision
        # knows the exact safe subquery it materialized (for the session
        # result cache).
        body = self.rule.body
        positive_body_idx = [
            i for i, sg in enumerate(body)
            if isinstance(sg, RelationalAtom) and not sg.negated
        ]
        pending_comparisons = [
            (i, sg) for i, sg in enumerate(body) if isinstance(sg, Comparison)
        ]
        pending_negations = [
            (i, sg) for i, sg in enumerate(body)
            if isinstance(sg, RelationalAtom) and sg.negated
        ]
        absorbed: set[int] = set()
        best_ratio_per_set: dict[frozenset[str], float] = {}

        current: Relation | None = None
        temp_counter = 0
        for position, idx in enumerate(order):
            trip("dynamic.join")
            join_started = time.perf_counter()
            atom = positives[idx]
            leaf = atom_binding_relation(self.db, atom)
            leaf_name = str(atom)
            # Leaf-level decision (the Fig. 8 leaves: okS on exhibits).
            leaf = self._maybe_filter(
                leaf, leaf_name, trace, best_ratio_per_set, force=False,
                subquery_indices=(positive_body_idx[idx],),
            )
            before = len(current) if current is not None else 0
            if current is None:
                current = leaf
            else:
                current = natural_join(current, leaf, name=f"temp{temp_counter}")
                temp_counter += 1
                trace.plan_lines.append(
                    f"{current.name}({', '.join(current.columns)}) := JOIN with "
                    f"{leaf_name}"
                )
            absorbed.add(positive_body_idx[idx])
            current = self._apply_pending(
                current, pending_comparisons, pending_negations, absorbed
            )
            if self.guard is not None:
                node = f"join:{atom.predicate}"
                self.guard.note_step(
                    name=node,
                    description=leaf_name,
                    input_tuples=before,
                    output_assignments=len(current),
                    seconds=time.perf_counter() - join_started,
                    filtered=False,
                )
                self.guard.checkpoint(rows=len(current), node=node)
            is_root = position == len(order) - 1
            if not is_root and current.name.startswith("temp"):
                current = self._maybe_filter(
                    current,
                    current.name,
                    trace,
                    best_ratio_per_set,
                    force=False,
                    subquery_indices=tuple(sorted(absorbed)),
                )

        if current is None:
            raise PlanError("flock query has no positive subgoals")
        if pending_comparisons or pending_negations:
            raise PlanError("unbound subgoals remain after all joins")

        # The root: "We must filter at the root, simply because that
        # filtering is necessary to find the answer to the query flock."
        result = self._final_filter(current, trace)
        trace.seconds = time.perf_counter() - started
        self.last_trace = trace
        if self.guard is not None:
            self.guard.check_answer(len(result))
        return FlockResult(result)

    # ------------------------------------------------------------------

    def _apply_pending(self, current, comparisons, negations, absorbed):
        """Apply every pending ``(body_index, subgoal)`` whose terms are
        bound; consumed indices are added to ``absorbed``."""
        cols = set(current.columns)
        progress = True
        while progress:
            progress = False
            for pair in list(comparisons):
                index, comp = pair
                if all(term_column(t) in cols for t in comp.bindable_terms()):
                    current = current.select(
                        lambda row, comp=comp: comp.evaluate(
                            {t: row[term_column(t)] for t in comp.bindable_terms()}
                        )
                    )
                    comparisons.remove(pair)
                    absorbed.add(index)
                    progress = True
            for pair in list(negations):
                index, neg = pair
                if all(term_column(t) in cols for t in neg.bindable_terms()):
                    from ..relational.operators import anti_join

                    neg_rel = atom_binding_relation(
                        self.db, neg.with_positive_polarity()
                    )
                    current = anti_join(current, neg_rel, name=current.name)
                    negations.remove(pair)
                    absorbed.add(index)
                    progress = True
        return current

    def _maybe_filter(
        self,
        relation: Relation,
        node: str,
        trace: DynamicTrace,
        best_ratio_per_set: dict[frozenset[str], float],
        force: bool,
        subquery_indices: tuple[int, ...] = (),
    ) -> Relation:
        params = tuple(c for c in relation.columns if c in self._param_cols)
        targets = self._condition_targets(relation)
        if not params or targets is None:
            return relation

        assignments = len(relation.project(list(params)))
        ratio = len(relation) / assignments if assignments else 0.0
        key = frozenset(params)
        threshold = self._decision_threshold

        seen_before = key in best_ratio_per_set
        if not seen_before:
            should = force or ratio < threshold * self.decision_factor
            reason = (
                f"new parameter set; ratio {ratio:.2f} "
                f"{'<' if should else '>='} {threshold * self.decision_factor:.2f}"
            )
        else:
            previous = best_ratio_per_set[key]
            should = force or ratio < previous * self.improvement_factor
            reason = (
                f"seen before (best ratio {previous:.2f}); ratio {ratio:.2f} "
                f"{'dropped enough' if should else 'not significantly lower'}"
            )
        best_ratio_per_set[key] = min(ratio, best_ratio_per_set.get(key, ratio))

        if not should:
            trace.decisions.append(
                DynamicDecision(node, params, ratio, False, reason,
                                len(relation), len(relation))
            )
            return relation

        filter_started = time.perf_counter()
        filtered, ok = self._filter_relation(relation, params, targets)
        if self.sink is not None and subquery_indices:
            # The survivors are exact for the safe subquery made of the
            # subgoals absorbed so far (earlier in-flight filters only
            # removed assignments that provably fail here too, by
            # monotonicity) — publish them for cross-query reuse.
            subquery = self.rule.with_body_subset(sorted(subquery_indices))
            self.sink.publish_step(subquery, list(params), ok, len(relation))
        trace.decisions.append(
            DynamicDecision(node, params, ratio, True, reason,
                            len(relation), len(filtered))
        )
        trace.plan_lines.append(
            f"{node} := FILTER(({', '.join(params)}), "
            f"{self.flock.filter})"
        )
        if self.guard is not None:
            self.guard.note_step(
                name=f"filter:{node}",
                description=f"FILTER({self.flock.filter})",
                input_tuples=len(relation),
                output_assignments=len(filtered),
                seconds=time.perf_counter() - filter_started,
                filtered=True,
            )
        return filtered

    def _filter_relation(
        self,
        relation: Relation,
        params: tuple[str, ...],
        targets: dict,
    ) -> tuple[Relation, Relation]:
        """Group by ``params``, apply the flock filter (all conjuncts),
        keep surviving rows.  Returns (filtered relation, ok-relation)."""
        ok = surviving_assignments(
            relation,
            list(params),
            self.flock.filter,
            lambda condition: targets[condition],
            name="ok",
        )
        return semi_join(relation, ok, name=relation.name), ok

    def _final_filter(self, current: Relation, trace: DynamicTrace) -> Relation:
        params = list(self.flock.parameter_columns)
        targets = self._condition_targets(current)
        if targets is None:
            raise PlanError(
                "filter target column never became bound; cannot finish"
            )
        if self.sink is not None:
            with_aggs = surviving_with_aggregates(
                current,
                params,
                self.flock.filter,
                lambda condition: targets[condition],
                name="flock",
            )
            self.sink.publish_final(with_aggs, len(current))
            result = with_aggs.project(params, name="flock")
        else:
            result = surviving_assignments(
                current,
                params,
                self.flock.filter,
                lambda condition: targets[condition],
                name="flock",
            )
        trace.plan_lines.append(
            f"flock({', '.join(params)}) := FILTER(({', '.join(params)}), "
            f"{self.flock.filter})"
        )
        trace.decisions.append(
            DynamicDecision(
                "root",
                tuple(params),
                0.0,
                True,
                "root filter is the flock answer",
                len(current),
                len(result),
            )
        )
        return result


def evaluate_flock_dynamic(
    db: Database,
    flock: QueryFlock,
    decision_factor: float = 1.0,
    improvement_factor: float = 0.5,
    join_order: list[int] | None = None,
    guard: GuardLike = None,
    sink=None,
) -> tuple[FlockResult, DynamicTrace]:
    """One-call dynamic evaluation; returns (result, trace)."""
    evaluator = DynamicEvaluator(
        db, flock, decision_factor=decision_factor,
        improvement_factor=improvement_factor, guard=guard, sink=sink,
    )
    result = evaluator.evaluate(join_order=join_order)
    return result, evaluator.last_trace
