"""Reference evaluators for query flocks.

Two independent implementations of the Section 2 semantics:

* :func:`evaluate_flock` — the "SQL way" (the paper's Fig. 1): compute
  the full parametrized query once with the parameters as output
  columns, GROUP BY the parameters, apply the filter as a HAVING
  condition.  This is the *baseline* every optimized plan must match —
  and the thing the a-priori plans beat.

* :func:`evaluate_flock_bruteforce` — the literal generate-and-test
  semantics: enumerate every active-domain assignment of the
  parameters, instantiate the query, evaluate it, test the filter.
  Exponentially slower; exists purely as a differential oracle for the
  test suite ("in principle, trying all such assignments in the query").
"""

from __future__ import annotations

from itertools import product

import time

from ..errors import EvaluationError
from ..datalog.query import as_union
from ..datalog.terms import Parameter, Term
from ..engine.memory import MemoryEngine
from ..guard import GuardLike, as_guard
from ..relational.aggregates import AggregateFunction
from ..relational.catalog import Database
from ..relational.evaluate import evaluate_conjunctive
from ..relational.relation import Relation
from .filters import (
    STAR,
    iter_conditions,
    plan_aggregate_specs,
)
from .flock import QueryFlock


def flock_answer_relation(
    db: Database,
    flock: QueryFlock,
    guard: GuardLike = None,
    order_strategy: str = "greedy",
) -> Relation:
    """The ungrouped answer relation: parameter columns + head columns.

    For a single-rule flock the head columns keep their variable names;
    for a union the branches are aligned positionally under ``_h0..``
    (branch head variables differ, per Fig. 4).
    """
    guard = as_guard(guard)
    params = list(flock.parameters)
    union = as_union(flock.query)
    if not flock.is_union:
        rule = union.rules[0]
        output: list[Term] = list(params) + list(rule.head_terms)
        return evaluate_conjunctive(
            db, rule, output_terms=output, guard=guard,
            order_strategy=order_strategy,
        )

    width = union.head_arity
    head_cols = tuple(f"_h{i}" for i in range(width))
    columns = tuple(str(p) for p in params) + head_cols
    rows: set[tuple] = set()
    for rule in union.rules:
        output = list(params) + list(rule.head_terms)
        branch = evaluate_conjunctive(
            db, rule, output_terms=output, guard=guard,
            order_strategy=order_strategy,
        )
        rows |= branch.tuples
        if guard is not None:
            guard.checkpoint(rows=len(rows), node=f"union:{union.head_name}")
    return Relation.from_distinct_rows(union.head_name, columns, rows)


def _target_resolver(flock: QueryFlock, answer: Relation):
    """Map one filter condition to the answer columns it aggregates."""
    param_cols = set(flock.parameter_columns)
    head_cols = [c for c in answer.columns if c not in param_cols]

    def resolve(condition) -> list[str]:
        if condition.target == STAR:
            return head_cols
        return [condition.target]

    return resolve


def evaluate_flock(
    db: Database,
    flock: QueryFlock,
    guard: GuardLike = None,
    sink=None,
    order_strategy: str = "greedy",
    parallel=None,
) -> Relation:
    """Group-by evaluation: the flock result as a relation over its
    parameter columns (sorted by parameter name).  Composite filters
    intersect the per-conjunct survivor sets.

    ``guard`` (an :class:`~repro.guard.ExecutionGuard`,
    :class:`~repro.guard.ResourceBudget` or
    :class:`~repro.guard.CancellationToken`) bounds the evaluation; the
    guard is checked after every join of the answer computation.

    ``sink`` (a :class:`repro.session.SessionSink`) receives the result
    together with its per-conjunct aggregate values, so a session can
    answer later requests at stricter thresholds without re-running the
    joins.

    ``parallel`` (a :class:`~repro.engine.parallel.ParallelExecutor`)
    evaluates the flock as one partitioned step — the whole
    join-group-filter pipeline fans out over hash partitions of a
    parameter column, bit-identical to the serial result.
    """
    guard = as_guard(guard)
    if parallel is not None and parallel.jobs > 1:
        return _evaluate_flock_parallel(
            db, flock, parallel, guard=guard, sink=sink,
            order_strategy=order_strategy,
        )
    started = time.perf_counter()
    answer = flock_answer_relation(
        db, flock, guard=guard, order_strategy=order_strategy
    )
    aggregates, conditions = plan_aggregate_specs(
        flock.filter, _target_resolver(flock, answer)
    )
    engine = MemoryEngine(db, guard=guard)
    passed = engine.group_filter(
        answer, list(flock.parameter_columns), aggregates, conditions,
        name="flock",
    )
    if sink is not None:
        sink.publish_final(passed, len(answer))
    result = engine.project_unique(
        passed, list(flock.parameter_columns), "flock"
    )
    if guard is not None:
        guard.note_step(
            name="flock",
            description=f"final FILTER({flock.filter})",
            input_tuples=len(answer),
            output_assignments=len(result),
            seconds=time.perf_counter() - started,
            filtered=True,
        )
        guard.check_answer(len(result))
    return result


def _evaluate_flock_parallel(
    db: Database,
    flock: QueryFlock,
    parallel,
    guard=None,
    sink=None,
    order_strategy: str = "greedy",
) -> Relation:
    """The group-by evaluation as one partitioned step plan.

    Lowering the flock as its own single FILTER step reuses the shared
    lowering (identical join orders to the serial path) and lets the
    parallel executor partition it; survivors come back canonically
    merged, so the result matches the serial evaluation bit for bit.
    """
    from .executor import lower_filter_step
    from .plans import single_step_plan

    started = time.perf_counter()
    step = single_step_plan(flock, name="flock").final_step
    plan = lower_filter_step(db, flock, step, order_strategy=order_strategy)
    outcome = parallel.run_step(
        plan, db=db, need_aggregates=sink is not None
    )
    if sink is not None:
        sink.publish_final(outcome.passed, outcome.answer_tuples)
    result = outcome.result
    if tuple(result.columns) != tuple(flock.parameter_columns):
        result = MemoryEngine(db).project_unique(
            result, list(flock.parameter_columns), "flock"
        )
    if guard is not None:
        guard.note_step(
            name="flock",
            description=f"final FILTER({flock.filter})",
            input_tuples=outcome.answer_tuples,
            output_assignments=len(result),
            seconds=time.perf_counter() - started,
            filtered=True,
        )
        guard.check_answer(len(result))
    return result


def parameter_domains(db: Database, flock: QueryFlock) -> dict[Parameter, set]:
    """The active domain of each parameter: all values appearing at a
    position where the parameter occurs in some positive subgoal.

    This is the candidate space the brute-force evaluator enumerates.
    Any acceptable assignment must draw from these sets — a value never
    co-occurring with the parameter's positions yields an empty answer,
    which no admissible filter accepts (flock construction refuses
    filters that pass on empty answers).
    """
    domains: dict[Parameter, set] = {p: set() for p in flock.parameters}
    for rule in flock.rules:
        for sg in rule.positive_atoms():
            base = db.get(sg.predicate)
            for position, term in enumerate(sg.terms):
                if isinstance(term, Parameter):
                    values = {row[position] for row in base.tuples}
                    domains[term] |= values
    return domains


def evaluate_flock_bruteforce(
    db: Database, flock: QueryFlock, guard: GuardLike = None
) -> Relation:
    """The literal Section 2 semantics; exponential, test-oracle only."""
    guard = as_guard(guard)
    params = list(flock.parameters)
    domains = parameter_domains(db, flock)
    candidate_lists = [sorted(domains[p], key=repr) for p in params]

    union = as_union(flock.query)
    rows: set[tuple] = set()
    for values in product(*candidate_lists):
        if guard is not None:
            guard.checkpoint(node="bruteforce assignment loop")
        assignment = dict(zip(params, values))
        instantiated = union.instantiate(assignment)
        width = instantiated.head_arity
        head_cols = tuple(f"_h{i}" for i in range(width))
        answer_rows: set[tuple] = set()
        for rule in instantiated.rules:
            branch = evaluate_conjunctive(
                db, rule, output_terms=list(rule.head_terms)
            )
            answer_rows |= branch.tuples
        answer = Relation("answer", head_cols, answer_rows)
        if _test_filter_on_answer(flock, answer):
            rows.add(tuple(values))
    return Relation("flock", flock.parameter_columns, rows)


def _test_filter_on_answer(flock: QueryFlock, answer: Relation) -> bool:
    """Apply the flock's filter to one instantiated answer relation,
    resolving a named target to the positional column for unions.  For
    composite filters every conjunct must pass."""
    return all(
        _test_single_condition(flock, condition, answer)
        for condition in iter_conditions(flock.filter)
    )


def _test_single_condition(
    flock: QueryFlock, condition, answer: Relation
) -> bool:
    if condition.target == STAR:
        return condition.test_relation(answer)
    # Single-rule flock: the answer columns are the head variables but
    # evaluate_conjunctive named them after the terms; map by position.
    rule = flock.rules[0]
    head_names = [str(t) for t in rule.head_terms]
    if condition.target not in head_names:
        raise EvaluationError(
            f"filter target {condition.target!r} not among head terms"
        )
    position = head_names.index(condition.target)
    projected = answer.project([answer.columns[position]])
    if condition.aggregate is AggregateFunction.COUNT:
        return condition.passes(len(projected))
    return condition.test_relation(
        answer.rename({answer.columns[position]: condition.target})
    )
