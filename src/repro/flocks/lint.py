"""Static diagnostics for query flocks.

Mining queries are written by analysts, and the paper's formalism makes
several mistakes easy: a tie-break comparison that contradicts itself,
a parameter that nothing constrains, subgoal sets whose join graph
degenerates to a cartesian product.  :func:`lint_flock` runs the checks
the library's own theory makes cheap:

* ``UNSATISFIABLE_COMPARISONS`` — the rule's arithmetic subgoals have no
  model (via :mod:`repro.datalog.arithmetic`): the rule returns nothing,
  ever;
* ``CARTESIAN_PRODUCT`` — the positive subgoals do not form a connected
  join graph: evaluation will multiply unrelated relations;
* ``UNCONSTRAINED_PARAMETER`` — every subgoal mentioning the parameter
  is disconnected from the rest of the body, so the parameter's value
  never interacts with the answer (each value passes or fails wholesale
  — usually a modelling mistake);
* ``DUPLICATE_SUBGOAL`` — a literally repeated subgoal (a no-op under
  set semantics);
* ``NON_MONOTONE_FILTER`` — the filter admits no a-priori optimization
  (Section 5), so evaluation will always be the naive join;
* ``REDUNDANT_SUBGOAL`` — a subgoal removable under a containment
  self-homomorphism: Chandra–Merlin for pure CQ rules, Klug's extended
  test for rules with arithmetic subgoals.  Negated rules are skipped —
  no complete containment test exists for them — and the skip itself is
  reported as an ``info``-severity ``REDUNDANCY_CHECK_SKIPPED`` entry,
  so a silent non-answer is distinguishable from "checked and clean".

Warnings carry a :class:`~repro.analysis.diagnostics.Severity` and
convert to structured diagnostics via :func:`lint_diagnostics`, the
shared reporting layer of :mod:`repro.analysis`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum

from ..analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from ..datalog.arithmetic import is_satisfiable
from ..datalog.atoms import RelationalAtom
from ..datalog.containment import contains, contains_extended
from ..datalog.query import ConjunctiveQuery, as_union
from .flock import QueryFlock


class LintCode(Enum):
    UNSATISFIABLE_COMPARISONS = "unsatisfiable-comparisons"
    CARTESIAN_PRODUCT = "cartesian-product"
    UNCONSTRAINED_PARAMETER = "unconstrained-parameter"
    DUPLICATE_SUBGOAL = "duplicate-subgoal"
    NON_MONOTONE_FILTER = "non-monotone-filter"
    REDUNDANT_SUBGOAL = "redundant-subgoal"
    REDUNDANCY_CHECK_SKIPPED = "redundancy-check-skipped"


@dataclass(frozen=True)
class LintWarning:
    code: LintCode
    message: str
    rule_index: int | None = None
    severity: Severity = Severity.WARNING

    def __str__(self) -> str:
        where = "" if self.rule_index is None else f" (rule {self.rule_index + 1})"
        return f"[{self.code.value}]{where} {self.message}"

    def to_diagnostic(self) -> Diagnostic:
        location = (
            None if self.rule_index is None else f"rule {self.rule_index + 1}"
        )
        return Diagnostic(
            self.code.value, self.severity, self.message, location=location
        )


def _join_graph_connected(rule: ConjunctiveQuery) -> bool:
    """Positive subgoals connected through shared bindable terms
    (comparisons also connect the terms they relate)."""
    positives = rule.positive_atoms()
    if len(positives) <= 1:
        return True
    term_sets = [frozenset(sg.bindable_terms()) for sg in positives]
    # Comparisons merge the components of the terms they mention.
    for comp in rule.comparisons():
        terms = frozenset(comp.bindable_terms())
        if terms:
            term_sets.append(terms)

    components: list[set] = []
    for terms in term_sets:
        touching = [c for c in components if c & terms]
        merged = set(terms)
        for c in touching:
            merged |= c
            components.remove(c)
        components.append(merged)
    # The atoms are connected iff all positive subgoals' terms ended up
    # in one component (term-free atoms, e.g. flag(), always disconnect).
    atom_components = []
    for sg in positives:
        terms = set(sg.bindable_terms())
        if not terms:
            return False
        for component in components:
            if terms & component:
                atom_components.append(id(component))
                break
    return len(set(atom_components)) == 1


def _lint_rule(rule: ConjunctiveQuery, index: int | None) -> list[LintWarning]:
    warnings: list[LintWarning] = []

    comparisons = list(rule.comparisons())
    if comparisons and not is_satisfiable(comparisons):
        warnings.append(
            LintWarning(
                LintCode.UNSATISFIABLE_COMPARISONS,
                "the arithmetic subgoals "
                f"({' AND '.join(map(str, comparisons))}) have no model; "
                "the rule always returns the empty relation",
                index,
            )
        )

    if not _join_graph_connected(rule):
        warnings.append(
            LintWarning(
                LintCode.CARTESIAN_PRODUCT,
                "the positive subgoals do not share variables/parameters; "
                "evaluation degenerates to a cartesian product",
                index,
            )
        )

    for parameter in sorted(rule.parameters(), key=lambda p: p.name):
        with_param = [
            sg for sg in rule.body if parameter in sg.bindable_terms()
        ]
        without_param = [
            sg for sg in rule.body if parameter not in sg.bindable_terms()
        ]
        if not without_param:
            continue
        linking_terms: set = set()
        for sg in with_param:
            linking_terms.update(
                t for t in sg.bindable_terms() if t != parameter
            )
        other_terms: set = set()
        for sg in without_param:
            other_terms.update(sg.bindable_terms())
        if linking_terms and not (linking_terms & other_terms):
            warnings.append(
                LintWarning(
                    LintCode.UNCONSTRAINED_PARAMETER,
                    f"parameter {parameter}'s subgoals share no terms with "
                    "the rest of the body; its value never interacts with "
                    "the answer",
                    index,
                )
            )
        elif not linking_terms:
            warnings.append(
                LintWarning(
                    LintCode.UNCONSTRAINED_PARAMETER,
                    f"parameter {parameter} appears only alongside constants; "
                    "its value never interacts with the answer",
                    index,
                )
            )

    duplicates = Counter(rule.body)
    for sg, count in duplicates.items():
        if count > 1:
            warnings.append(
                LintWarning(
                    LintCode.DUPLICATE_SUBGOAL,
                    f"subgoal {sg} is repeated {count} times (a no-op under "
                    "set semantics)",
                    index,
                )
            )

    warnings.extend(_redundant_subgoals(rule, index))
    return warnings


def _redundant_subgoals(
    rule: ConjunctiveQuery, index: int | None
) -> list[LintWarning]:
    """Subgoals removable under a containment self-homomorphism.

    Dropping a subgoal can only *widen* a query, so the rule without
    subgoal *i* always contains the rule; when the rule also contains
    the widened version, the two are equivalent and subgoal *i* does no
    work.  Pure CQ rules use the Chandra–Merlin test; rules with
    arithmetic (but no negation) use Klug's extended test — e.g. in
    ``p(X,$1) AND p(X,$2) AND $1 <= $2 AND $1 < $2`` the ``<=`` subgoal
    is entailed by the ``<`` and flagged.  Rules with negation are
    skipped (no sound-and-complete containment test is available) —
    reported explicitly at ``info`` severity rather than silently.
    """
    if len(rule.body) <= 1:
        return []
    negated = [
        sg for sg in rule.body
        if isinstance(sg, RelationalAtom) and sg.negated
    ]
    if negated:
        return [
            LintWarning(
                LintCode.REDUNDANCY_CHECK_SKIPPED,
                "redundant-subgoal check skipped: the rule negates "
                f"{', '.join(str(sg) for sg in negated)}, and no "
                "sound-and-complete containment test exists for queries "
                "with negation",
                index,
                severity=Severity.INFO,
            )
        ]
    is_pure = all(isinstance(sg, RelationalAtom) for sg in rule.body)
    test = contains if is_pure else contains_extended

    warnings: list[LintWarning] = []
    for i in range(len(rule.body)):
        candidate = rule.without_subgoals([i])
        if not candidate.body:
            continue
        try:
            redundant = test(rule, candidate)
        except Exception:  # unsupported shape (e.g. exotic comparison)
            continue
        if redundant:
            warnings.append(
                LintWarning(
                    LintCode.REDUNDANT_SUBGOAL,
                    f"subgoal {rule.body[i]} is redundant (the query is "
                    "equivalent without it)",
                    index,
                )
            )
    return warnings


def lint_flock(flock: QueryFlock) -> list[LintWarning]:
    """Run every check; returns an empty list for a clean flock."""
    warnings: list[LintWarning] = []
    rules = as_union(flock.query).rules
    multi = len(rules) > 1
    for index, rule in enumerate(rules):
        warnings.extend(_lint_rule(rule, index if multi else None))

    if not flock.filter.is_monotone:
        warnings.append(
            LintWarning(
                LintCode.NON_MONOTONE_FILTER,
                f"filter {flock.filter} is not monotone; no a-priori "
                "pre-filtering is possible (Section 5)",
            )
        )
    return warnings


def lint_diagnostics(flock: QueryFlock) -> DiagnosticReport:
    """:func:`lint_flock` as a structured
    :class:`~repro.analysis.diagnostics.DiagnosticReport`."""
    return DiagnosticReport(
        tuple(w.to_diagnostic() for w in lint_flock(flock))
    )
