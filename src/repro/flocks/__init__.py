"""Query flocks: the paper's primary contribution.

The flock model (Section 2), filter conditions and monotonicity
(Sections 2.1, 5), reference evaluators, the FILTER-step plan notation
and legality rule (Sections 4.1–4.2), the static optimizer (Section
4.3), the dynamic evaluator (Section 4.4), SQL translation (Section
1.3/Fig. 1), and the classic a-priori baseline it all generalizes.
"""

from .apriori import (
    apriori_itemsets,
    baskets_as_sets,
    frequent_pairs,
    itemset_flock,
    itemset_plan,
    itemsets_from_flock_result,
)
from .compare import (
    ComparisonReport,
    StrategyTiming,
    compare_strategies,
)
from .dynamic import (
    DynamicDecision,
    DynamicEvaluator,
    DynamicTrace,
    evaluate_flock_dynamic,
)
from .executor import execute_plan, execute_step
from .filters import (
    STAR,
    CompositeFilter,
    FilterCondition,
    iter_conditions,
    parse_filter,
    filter_implies,
    filter_signature,
    refilter_aggregates,
    support_filter,
    surviving_assignments,
    surviving_with_aggregates,
)
from .flock import QueryFlock, parse_flock
from .lint import LintCode, LintWarning, lint_diagnostics, lint_flock
from .mining import BACKENDS, Downgrade, MiningReport, STRATEGIES, mine
from .paper import (
    fig2_flock,
    fig3_flock,
    fig4_flock,
    fig5_plan,
    fig6_flock,
    fig6_query,
    fig7_plan,
    fig10_flock,
)
from .naive import (
    evaluate_flock,
    evaluate_flock_bruteforce,
    flock_answer_relation,
    parameter_domains,
)
from .optimizer import (
    FlockOptimizer,
    ScoredPlan,
    estimate_rule_size,
    optimize,
    optimize_union,
)
from .plans import (
    FilterStep,
    QueryPlan,
    chained_plan,
    plan_from_subqueries,
    single_step_plan,
    validate_plan,
)
from .result import ExecutionTrace, FlockResult, StepTrace
from .rules import AssociationRule, mine_association_rules, rules_for_consequent
from .sequence import (
    FlockSequence,
    SequenceResult,
    SequenceStep,
    mine_maximal_itemsets,
)
from .sql import fig1_sql, flock_to_sql, plan_to_sql
from .sqlbackend import (
    SQLiteBackend,
    evaluate_flock_sqlite,
    execute_plan_sqlite,
)

__all__ = [
    "AssociationRule",
    "BACKENDS",
    "ComparisonReport",
    "CompositeFilter",
    "Downgrade",
    "DynamicDecision",
    "DynamicEvaluator",
    "DynamicTrace",
    "ExecutionTrace",
    "FilterCondition",
    "FilterStep",
    "FlockOptimizer",
    "FlockResult",
    "FlockSequence",
    "LintCode",
    "LintWarning",
    "MiningReport",
    "QueryFlock",
    "QueryPlan",
    "SQLiteBackend",
    "STAR",
    "STRATEGIES",
    "ScoredPlan",
    "SequenceResult",
    "SequenceStep",
    "StepTrace",
    "StrategyTiming",
    "apriori_itemsets",
    "baskets_as_sets",
    "chained_plan",
    "compare_strategies",
    "estimate_rule_size",
    "evaluate_flock",
    "evaluate_flock_bruteforce",
    "evaluate_flock_dynamic",
    "evaluate_flock_sqlite",
    "execute_plan",
    "execute_plan_sqlite",
    "execute_step",
    "fig10_flock",
    "fig1_sql",
    "fig2_flock",
    "fig3_flock",
    "fig4_flock",
    "fig5_plan",
    "fig6_flock",
    "fig6_query",
    "fig7_plan",
    "filter_implies",
    "filter_signature",
    "flock_answer_relation",
    "flock_to_sql",
    "frequent_pairs",
    "itemset_flock",
    "itemset_plan",
    "itemsets_from_flock_result",
    "iter_conditions",
    "lint_diagnostics",
    "lint_flock",
    "mine",
    "mine_association_rules",
    "mine_maximal_itemsets",
    "optimize",
    "optimize_union",
    "parameter_domains",
    "parse_filter",
    "parse_flock",
    "plan_from_subqueries",
    "plan_to_sql",
    "refilter_aggregates",
    "rules_for_consequent",
    "single_step_plan",
    "support_filter",
    "surviving_assignments",
    "surviving_with_aggregates",
    "validate_plan",
]
