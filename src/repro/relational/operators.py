"""Relational-algebra operators used by the query engine.

Joins are columnar hash joins: build a hash table on the smaller input
keyed by the shared columns, probe with the larger, then gather the
matching row indexes through the column arrays batch-at-a-time.  Negated
subgoals become anti-joins (Section 2.3's ``NOT`` is evaluated against
fully bound terms, which safety guarantees).  Everything is
set-semantics.

A key property keeps these operators cheap: the natural join of two
duplicate-free relations is duplicate-free.  Two matched pairs
``(l1, r1)`` and ``(l2, r2)`` produce equal output rows only if
``l1 == l2`` (the output contains every left column), which forces the
shared key columns equal and hence ``r1 == r2``.  Joins, semi-joins,
anti-joins, and selections therefore never re-deduplicate; only
projections that drop columns and unions do.

When both inputs carry encoded code columns interned against the *same*
:class:`~.dictionary.ValueDictionary`, every operator here runs on the
integer codes instead of the values — build/probe keys are small ints,
gathers move ints, and the output is itself encoded (no decode on the
hot path).  Mixed or differently-encoded inputs transparently fall back
to the value arrays.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..errors import SchemaError
from .dictionary import ValueDictionary
from .relation import Relation


def shared_columns(left: Relation, right: Relation) -> tuple[str, ...]:
    """Columns common to both relations, in ``left``'s order."""
    right_set = set(right.columns)
    return tuple(c for c in left.columns if c in right_set)


def _shared_dictionary(left: Relation, right: Relation) -> ValueDictionary | None:
    """The common dictionary when both sides are encoded against one."""
    d = left.dictionary
    if d is not None and right.dictionary is d and left.is_encoded and right.is_encoded:
        return d
    return None


def _key_reader(
    rel: Relation, keys: Sequence[str], encoded: bool = False
) -> Iterator[object]:
    """An iterator of per-row key values for ``rel`` over ``keys``.

    Single-column keys iterate the raw column array (no tuple boxing);
    multi-column keys zip the key arrays.  ``encoded`` reads the code
    columns instead of the value arrays.
    """
    if encoded:
        codes = rel.code_columns()
        arrays = [codes[rel.column_position(c)] for c in keys]
    else:
        arrays = [rel.column_array(c) for c in keys]
    if len(arrays) == 1:
        return iter(arrays[0])
    return zip(*arrays)


def _gather(arrays: Sequence[list], indexes: list) -> list[list]:
    """Materialize selected rows of row-aligned arrays, column by column."""
    return [list(map(arr.__getitem__, indexes)) for arr in arrays]


def natural_join(left: Relation, right: Relation, name: str = "join") -> Relation:
    """Natural (hash) join on all shared columns.

    With no shared columns this degrades to a cartesian product, which
    the evaluator's join ordering tries to avoid but must support (the
    paper's queries can have disconnected subgoal sets after deletion).
    """
    keys = shared_columns(left, right)
    left_cols = set(left.columns)
    right_only = [c for c in right.columns if c not in left_cols]
    out_columns = left.columns + tuple(right_only)
    dictionary = _shared_dictionary(left, right)
    encoded = dictionary is not None

    if not keys:
        return _cartesian(left, right, out_columns, right_only, name)

    # Build on the smaller side, probe with the larger.
    build, probe, build_is_left = (
        (left, right, True) if len(left) <= len(right) else (right, left, False)
    )

    table: dict[object, list[int]] = {}
    for i, key in enumerate(_key_reader(build, keys, encoded)):
        bucket = table.get(key)
        if bucket is None:
            table[key] = [i]
        else:
            bucket.append(i)

    build_idx: list[int] = []
    probe_idx: list[int] = []
    for i, key in enumerate(_key_reader(probe, keys, encoded)):
        bucket = table.get(key)
        if bucket is not None:
            probe_idx.extend([i] * len(bucket))
            build_idx.extend(bucket)

    left_idx, right_idx = (
        (build_idx, probe_idx) if build_is_left else (probe_idx, build_idx)
    )
    if encoded:
        right_codes = right.code_columns()
        right_only_codes = [
            right_codes[right.column_position(c)] for c in right_only
        ]
        codes = _gather(left.code_columns(), left_idx) + _gather(
            right_only_codes, right_idx
        )
        return Relation.from_encoded(
            name, out_columns, codes, dictionary, count=len(left_idx)
        )
    right_only_arrays = [right.column_array(c) for c in right_only]
    data = _gather(left.columns_data(), left_idx) + _gather(
        right_only_arrays, right_idx
    )
    count = len(left_idx) if not out_columns else None
    return Relation.from_columns(name, out_columns, data, count=count)


def _cartesian(
    left: Relation,
    right: Relation,
    out_columns: tuple[str, ...],
    right_only: Sequence[str],
    name: str,
) -> Relation:
    n, m = len(left), len(right)
    dictionary = _shared_dictionary(left, right)
    if dictionary is not None:
        right_codes = right.code_columns()
        codes = [
            [v for v in col for _ in range(m)] for col in left.code_columns()
        ] + [
            right_codes[right.column_position(c)] * n for c in right_only
        ]
        return Relation.from_encoded(
            name, out_columns, codes, dictionary, count=n * m
        )
    data = [
        [v for v in arr for _ in range(m)] for arr in left.columns_data()
    ] + [right.column_array(c) * n for c in right_only]
    return Relation.from_columns(name, out_columns, data, count=n * m)


def semi_join(left: Relation, right: Relation, name: str = "semijoin") -> Relation:
    """Tuples of ``left`` that join with at least one tuple of ``right``."""
    return _filter_by_membership(left, right, name, keep_matches=True)


def anti_join(left: Relation, right: Relation, name: str = "antijoin") -> Relation:
    """Tuples of ``left`` that join with **no** tuple of ``right``.

    This is how a fully bound ``NOT p(...)`` subgoal is applied to the
    current binding relation.
    """
    return _filter_by_membership(left, right, name, keep_matches=False)


def _filter_by_membership(
    left: Relation, right: Relation, name: str, keep_matches: bool
) -> Relation:
    keys = shared_columns(left, right)
    if not keys:
        # No shared columns: left survives iff right is (non)empty.
        if bool(len(right)) == keep_matches:
            return left.with_name(name)
        return Relation(name, left.columns)
    encoded = _shared_dictionary(left, right) is not None
    right_keys = set(_key_reader(right, keys, encoded))
    keep = [
        i
        for i, key in enumerate(_key_reader(left, keys, encoded))
        if (key in right_keys) == keep_matches
    ]
    return left.take(keep, name=name)


def cartesian_product(left: Relation, right: Relation, name: str = "product") -> Relation:
    """Explicit cartesian product (shared columns must be disjoint)."""
    if shared_columns(left, right):
        raise SchemaError(
            "cartesian_product requires disjoint columns; use natural_join"
        )
    return _cartesian(left, right, left.columns + right.columns,
                      right.columns, name)


def union_all(relations: Sequence[Relation], name: str = "union") -> Relation:
    """Set union of same-schema relations (duplicates collapse)."""
    if not relations:
        raise ValueError("union_all needs at least one relation")
    first = relations[0]
    rows: set[tuple] = set()
    for rel in relations:
        if rel.columns != first.columns:
            raise SchemaError(
                f"union_all schema mismatch: {first.columns} vs {rel.columns}"
            )
        rows |= rel.tuples
    return Relation.from_distinct_rows(name, first.columns, rows)
