"""Relational-algebra operators used by the query evaluator.

Joins are hash joins: build a hash table on the smaller input keyed by
the shared columns, probe with the larger.  Negated subgoals become
anti-joins (Section 2.3's ``NOT`` is evaluated against fully bound
terms, which safety guarantees).  Everything is set-semantics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from ..errors import SchemaError
from .relation import Relation


def shared_columns(left: Relation, right: Relation) -> tuple[str, ...]:
    """Columns common to both relations, in ``left``'s order."""
    right_set = set(right.columns)
    return tuple(c for c in left.columns if c in right_set)


def natural_join(left: Relation, right: Relation, name: str = "join") -> Relation:
    """Natural (hash) join on all shared columns.

    With no shared columns this degrades to a cartesian product, which
    the evaluator's join ordering tries to avoid but must support (the
    paper's queries can have disconnected subgoal sets after deletion).
    """
    keys = shared_columns(left, right)
    out_columns = left.columns + tuple(
        c for c in right.columns if c not in set(left.columns)
    )

    # Build on the smaller side, probe with the larger.
    build, probe, build_is_left = (
        (left, right, True) if len(left) <= len(right) else (right, left, False)
    )
    build_key_pos = [build.column_position(c) for c in keys]
    probe_key_pos = [probe.column_position(c) for c in keys]

    table: dict[tuple, list[tuple]] = defaultdict(list)
    for row in build.tuples:
        table[tuple(row[p] for p in build_key_pos)].append(row)

    # Output assembly: for each matched (left_row, right_row), emit
    # left_row + right-only columns.
    right_only = [c for c in right.columns if c not in set(left.columns)]
    right_only_pos = [right.column_position(c) for c in right_only]

    rows: set[tuple] = set()
    for probe_row in probe.tuples:
        key = tuple(probe_row[p] for p in probe_key_pos)
        for build_row in table.get(key, ()):
            left_row, right_row = (
                (build_row, probe_row) if build_is_left else (probe_row, build_row)
            )
            rows.add(left_row + tuple(right_row[p] for p in right_only_pos))
    return Relation(name, out_columns, rows)


def semi_join(left: Relation, right: Relation, name: str = "semijoin") -> Relation:
    """Tuples of ``left`` that join with at least one tuple of ``right``."""
    keys = shared_columns(left, right)
    if not keys:
        # No shared columns: left survives iff right is nonempty.
        return left.with_name(name) if len(right) else Relation(name, left.columns)
    left_pos = [left.column_position(c) for c in keys]
    right_keys = right.project(keys).tuples
    rows = {
        row for row in left.tuples if tuple(row[p] for p in left_pos) in right_keys
    }
    return Relation(name, left.columns, rows)


def anti_join(left: Relation, right: Relation, name: str = "antijoin") -> Relation:
    """Tuples of ``left`` that join with **no** tuple of ``right``.

    This is how a fully bound ``NOT p(...)`` subgoal is applied to the
    current binding relation.
    """
    keys = shared_columns(left, right)
    if not keys:
        return Relation(name, left.columns) if len(right) else left.with_name(name)
    left_pos = [left.column_position(c) for c in keys]
    right_keys = right.project(keys).tuples
    rows = {
        row
        for row in left.tuples
        if tuple(row[p] for p in left_pos) not in right_keys
    }
    return Relation(name, left.columns, rows)


def cartesian_product(left: Relation, right: Relation, name: str = "product") -> Relation:
    """Explicit cartesian product (shared columns must be disjoint)."""
    if shared_columns(left, right):
        raise SchemaError(
            "cartesian_product requires disjoint columns; use natural_join"
        )
    out_columns = left.columns + right.columns
    rows = {l + r for l in left.tuples for r in right.tuples}
    return Relation(name, out_columns, rows)


def union_all(relations: Sequence[Relation], name: str = "union") -> Relation:
    """Set union of same-schema relations (duplicates collapse)."""
    if not relations:
        raise ValueError("union_all needs at least one relation")
    first = relations[0]
    rows: set[tuple] = set()
    for rel in relations:
        if rel.columns != first.columns:
            raise SchemaError(
                f"union_all schema mismatch: {first.columns} vs {rel.columns}"
            )
        rows |= rel.tuples
    return Relation(name, first.columns, rows)
