"""Binding relations: the leaf inputs of every physical plan.

A positive subgoal becomes a *binding relation* — columns named after
the subgoal's variables/parameters, constants and repeated terms handled
by selection — and arithmetic comparisons filter a binding relation once
their terms are bound.  These helpers are shared by the physical-plan
engine (:mod:`repro.engine`) and the public evaluator facade
(:mod:`repro.relational.evaluate`).

Column naming convention: a binding column is the rendered term —
``"P"`` for a variable, ``"$s"`` for a parameter — so the same term
always joins with itself across subgoals.
"""

from __future__ import annotations

from itertools import repeat
from typing import Iterable

from ..errors import EvaluationError
from ..datalog.atoms import Comparison, RelationalAtom
from ..datalog.terms import Constant, Term
from .catalog import Database
from .relation import Relation


def term_column(term: Term) -> str:
    """The canonical column name for a bindable term."""
    return str(term)


def atom_binding_relation(
    db: Database, subgoal: RelationalAtom, encode: bool = True
) -> Relation:
    """The binding relation of one (positive-polarity) relational subgoal.

    Applies constant selections and repeated-term equality selections,
    then projects to one column per distinct bindable term.  The result
    has set semantics, so duplicates introduced by the projection
    collapse — this is what makes a one-subgoal subquery like
    ``answer(B) :- baskets(B,$1)`` well defined.

    With ``encode`` (the default) the base relation is interned against
    the database's shared dictionary and the binding relation is built
    on code columns — constant selections compare integer codes and the
    output feeds the encoded join/aggregate fast paths.  ``encode=False``
    forces the legacy value-array path (used by the differential tests).
    """
    base = db.encoded(subgoal.predicate) if encode else db.get(subgoal.predicate)
    if base.arity != subgoal.arity:
        raise EvaluationError(
            f"subgoal {subgoal} has arity {subgoal.arity} but relation "
            f"{base.name!r} has arity {base.arity}"
        )

    # Positional filter: constants must match; repeated bindable terms
    # must agree.
    first_position: dict[Term, int] = {}
    constant_checks: list[tuple[int, object]] = []
    equality_checks: list[tuple[int, int]] = []
    output_positions: list[int] = []
    output_columns: list[str] = []
    for i, term in enumerate(subgoal.terms):
        if isinstance(term, Constant):
            constant_checks.append((i, term.value))
        elif term in first_position:
            equality_checks.append((first_position[term], i))
        else:
            first_position[term] = i
            output_positions.append(i)
            output_columns.append(term_column(term))

    name = f"bind:{subgoal.predicate}"
    dictionary = base.dictionary if base.is_encoded else None
    if dictionary is not None:
        columns = base.code_columns()
    else:
        columns = base.columns_data()

    if not constant_checks and not equality_checks:
        # Every position is kept: the arrays can be shared as-is.
        picked = [columns[p] for p in output_positions]
        if dictionary is not None:
            return Relation.from_encoded(
                name, tuple(output_columns), picked, dictionary,
                count=len(base),
            )
        return Relation.from_columns(
            name, tuple(output_columns), picked, count=len(base)
        )

    keep: list[int] | range = range(len(base))
    for pos, value in constant_checks:
        arr = columns[pos]
        if dictionary is not None:
            # Compare interned codes; a never-seen constant matches nothing.
            code = dictionary.code_of(value)
            keep = [] if code is None else [i for i in keep if arr[i] == code]
        else:
            keep = [i for i in keep if arr[i] == value]
    for first, other in equality_checks:
        a, b = columns[first], columns[other]
        keep = [i for i in keep if a[i] == b[i]]

    # The surviving rows stay distinct after dropping the checked
    # positions: a dropped column is either a fixed constant or equal to
    # a kept column, so it cannot distinguish two rows on its own.
    count = len(keep) if isinstance(keep, list) else len(base)
    picked = [
        list(map(columns[p].__getitem__, keep)) for p in output_positions
    ]
    if dictionary is not None:
        return Relation.from_encoded(
            name, tuple(output_columns), picked, dictionary, count=count
        )
    return Relation.from_columns(
        name, tuple(output_columns), picked, count=count
    )


def unit_relation() -> Relation:
    """The zero-column relation with one (empty) tuple — the identity of
    the natural join, used for queries with no positive subgoals."""
    return Relation("unit", (), {()})


def apply_comparison(current: Relation, comp: Comparison) -> Relation:
    """Filter the binding relation by an arithmetic subgoal whose terms
    are all bound (or constant)."""

    def resolve(term: Term) -> tuple[int | None, object]:
        if isinstance(term, Constant):
            return None, term.value
        return current.column_position(term_column(term)), None

    left_pos, left_const = resolve(comp.left)
    right_pos, right_const = resolve(comp.right)
    fn = comp.op.fn

    def operand(pos: int | None, const: object) -> Iterable[object]:
        if pos is None:
            return repeat(const)
        # Ordered comparisons need real values; decode only the columns
        # the predicate touches (codes are equality-faithful, not
        # order-faithful).
        if current.is_encoded and current.dictionary is not None:
            return current.dictionary.decode_column(
                current.code_columns()[pos]
            )
        return current.columns_data()[pos]

    if left_pos is None and right_pos is None:
        # Constant-only comparison: one evaluation decides every row.
        if fn(left_const, right_const):
            return current
        return current.take([])
    left = operand(left_pos, left_const)
    right = operand(right_pos, right_const)
    # map() drives the comparison at C speed; the comprehension only
    # collects surviving row indexes.
    keep = [i for i, ok in enumerate(map(fn, left, right)) if ok]
    return current.take(keep)


def terms_bound(current: Relation, subgoal: RelationalAtom) -> bool:
    """Whether every bindable term of ``subgoal`` is a column of
    ``current``."""
    cols = set(current.columns)
    return all(term_column(t) in cols for t in subgoal.bindable_terms())
