"""Binding relations: the leaf inputs of every physical plan.

A positive subgoal becomes a *binding relation* — columns named after
the subgoal's variables/parameters, constants and repeated terms handled
by selection — and arithmetic comparisons filter a binding relation once
their terms are bound.  These helpers are shared by the physical-plan
engine (:mod:`repro.engine`) and the public evaluator facade
(:mod:`repro.relational.evaluate`).

Column naming convention: a binding column is the rendered term —
``"P"`` for a variable, ``"$s"`` for a parameter — so the same term
always joins with itself across subgoals.
"""

from __future__ import annotations

from ..errors import EvaluationError
from ..datalog.atoms import Comparison, RelationalAtom
from ..datalog.terms import Constant, Term
from .catalog import Database
from .relation import Relation


def term_column(term: Term) -> str:
    """The canonical column name for a bindable term."""
    return str(term)


def atom_binding_relation(db: Database, subgoal: RelationalAtom) -> Relation:
    """The binding relation of one (positive-polarity) relational subgoal.

    Applies constant selections and repeated-term equality selections,
    then projects to one column per distinct bindable term.  The result
    has set semantics, so duplicates introduced by the projection
    collapse — this is what makes a one-subgoal subquery like
    ``answer(B) :- baskets(B,$1)`` well defined.
    """
    base = db.get(subgoal.predicate)
    if base.arity != subgoal.arity:
        raise EvaluationError(
            f"subgoal {subgoal} has arity {subgoal.arity} but relation "
            f"{base.name!r} has arity {base.arity}"
        )

    # Positional filter: constants must match; repeated bindable terms
    # must agree.
    first_position: dict[Term, int] = {}
    constant_checks: list[tuple[int, object]] = []
    equality_checks: list[tuple[int, int]] = []
    output_positions: list[int] = []
    output_columns: list[str] = []
    for i, term in enumerate(subgoal.terms):
        if isinstance(term, Constant):
            constant_checks.append((i, term.value))
        elif term in first_position:
            equality_checks.append((first_position[term], i))
        else:
            first_position[term] = i
            output_positions.append(i)
            output_columns.append(term_column(term))

    name = f"bind:{subgoal.predicate}"
    data = base.columns_data()
    if not constant_checks and not equality_checks:
        # Every position is kept: the arrays can be shared as-is.
        return Relation.from_columns(
            name,
            tuple(output_columns),
            [data[p] for p in output_positions],
            count=len(base),
        )

    keep = range(len(base))
    for pos, value in constant_checks:
        arr = data[pos]
        keep = [i for i in keep if arr[i] == value]
    for first, other in equality_checks:
        a, b = data[first], data[other]
        keep = [i for i in keep if a[i] == b[i]]

    # The surviving rows stay distinct after dropping the checked
    # positions: a dropped column is either a fixed constant or equal to
    # a kept column, so it cannot distinguish two rows on its own.
    return Relation.from_columns(
        name,
        tuple(output_columns),
        [[data[p][i] for i in keep] for p in output_positions],
        count=len(keep) if isinstance(keep, list) else len(base),
    )


def unit_relation() -> Relation:
    """The zero-column relation with one (empty) tuple — the identity of
    the natural join, used for queries with no positive subgoals."""
    return Relation("unit", (), {()})


def apply_comparison(current: Relation, comp: Comparison) -> Relation:
    """Filter the binding relation by an arithmetic subgoal whose terms
    are all bound (or constant)."""

    def resolve(term: Term):
        if isinstance(term, Constant):
            return None, term.value
        return current.column_position(term_column(term)), None

    left_pos, left_const = resolve(comp.left)
    right_pos, right_const = resolve(comp.right)
    fn = comp.op.fn
    data = current.columns_data()
    n = len(current)
    left = data[left_pos] if left_pos is not None else [left_const] * n
    right = data[right_pos] if right_pos is not None else [right_const] * n
    keep = [i for i in range(n) if fn(left[i], right[i])]
    return Relation.from_columns(
        current.name,
        current.columns,
        [[arr[i] for i in keep] for arr in data],
        count=len(keep),
    )


def terms_bound(current: Relation, subgoal) -> bool:
    """Whether every bindable term of ``subgoal`` is a column of
    ``current``."""
    cols = set(current.columns)
    return all(term_column(t) in cols for t in subgoal.bindable_terms())
