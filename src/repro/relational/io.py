"""CSV persistence for relations and databases.

Benchmarks and examples generate synthetic workloads; saving them lets a
run be replayed exactly.  The format is plain CSV with a header row of
column names.  Values round-trip as strings unless they parse as int or
float (matching the generators' value domains: IDs, words, counts,
weights).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from .catalog import Database
from .relation import Relation


def _parse_value(text: str) -> Union[str, int, float]:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def save_relation(relation: Relation, path: Union[str, Path]) -> None:
    """Write one relation to a CSV file (header = column names)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.columns)
        for row in sorted(relation.tuples, key=repr):
            writer.writerow(row)


def load_relation(path: Union[str, Path], name: str | None = None) -> Relation:
    """Read one relation from a CSV file written by :func:`save_relation`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            columns = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty; expected a header row") from None
        rows = [tuple(_parse_value(v) for v in row) for row in reader]
    return Relation(name or path.stem, columns, rows)


def save_database(db: Database, directory: Union[str, Path]) -> None:
    """Write every relation of a database as ``<directory>/<name>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in db.names():
        save_relation(db.get(name), directory / f"{name}.csv")


def load_database(
    directory: Union[str, Path], encode: bool = True
) -> Database:
    """Load every ``*.csv`` in a directory into a database.

    With ``encode`` (the default) each relation is interned against the
    catalog's shared dictionary as it loads, so the database comes up
    ready for the encoded fast paths — and for shared-memory publication
    to pool workers — without a first-scan encoding hit.
    """
    directory = Path(directory)
    db = Database()
    for path in sorted(directory.glob("*.csv")):
        relation = load_relation(path)
        db.add(relation)
        if encode:
            db.encoded(relation.name)
    return db
