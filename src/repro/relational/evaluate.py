"""Evaluation of extended conjunctive queries over a :class:`Database`.

This module is the public facade over the physical-plan engine
(:mod:`repro.engine`): a query is *lowered* once — join order chosen,
comparisons and negated subgoals attached to the earliest stage where
their terms are bound — and the resulting
:class:`~repro.engine.ir.PhysicalPlan` is interpreted by the columnar
in-memory engine.  ``explain`` renders the very same plan object, so
the printed plan is by construction the executed one.

Column naming convention: a binding column is the rendered term —
``"P"`` for a variable, ``"$s"`` for a parameter — so the same term
always joins with itself across subgoals.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import EvaluationError
from ..datalog.query import ConjunctiveQuery, UnionQuery
from ..datalog.safety import assert_safe
from ..datalog.terms import Term
from ..engine.memory import MemoryEngine
from ..engine.planner import lower_rule
from ..guard import GuardLike, as_guard
from .binding import atom_binding_relation, term_column
from .catalog import Database
from .joinorder import greedy_join_order
from .relation import Relation

__all__ = [
    "atom_binding_relation",
    "evaluate_conjunctive",
    "evaluate_union",
    "greedy_join_order",
    "term_column",
]


def evaluate_conjunctive(
    db: Database,
    query: ConjunctiveQuery,
    output_terms: Sequence[Term] | None = None,
    join_order: Sequence[int] | None = None,
    order_strategy: str = "greedy",
    check_safe: bool = True,
    guard: GuardLike = None,
) -> Relation:
    """Evaluate one extended conjunctive query.

    Args:
        db: the database to evaluate against.
        query: a safe extended CQ.
        output_terms: terms to project the result onto; defaults to the
            query's head terms.  Every bindable output term must occur in
            a positive subgoal.
        join_order: optional explicit ordering of the positive subgoals
            (indices into ``query.positive_atoms()``); wins over
            ``order_strategy``.
        order_strategy: ``"greedy"`` (default) or ``"selinger"``.
        check_safe: set ``False`` to skip the safety assertion when the
            caller has already checked (the optimizer's hot path).
        guard: optional :class:`~repro.guard.ExecutionGuard` (or
            :class:`~repro.guard.ResourceBudget` /
            :class:`~repro.guard.CancellationToken`) checked after every
            join step.

    Returns:
        A relation whose columns are the rendered output terms, with
        set semantics.
    """
    if check_safe:
        assert_safe(query)
    plan = lower_rule(
        db,
        query,
        output_terms=output_terms,
        join_order=join_order,
        order_strategy=order_strategy,
    )
    engine = MemoryEngine(db, guard=guard)
    return engine.run_plan(plan)


def evaluate_union(
    db: Database,
    union: UnionQuery,
    output_terms_per_rule: Sequence[Sequence[Term]] | None = None,
    output_columns: Sequence[str] | None = None,
    order_strategy: str = "greedy",
    guard: GuardLike = None,
) -> Relation:
    """Evaluate a union query as the set union of its rules' results.

    Rules may use different head variable names (Fig. 4's ``D`` vs
    ``A``); results are aligned positionally.  ``output_columns`` names
    the unified columns (defaults to ``h0..h{k-1}``).
    """
    per_rule = output_terms_per_rule or [list(r.head_terms) for r in union.rules]
    if len(per_rule) != len(union.rules):
        raise EvaluationError(
            "output_terms_per_rule must match the number of union rules"
        )
    widths = {len(terms) for terms in per_rule}
    if len(widths) != 1:
        raise EvaluationError("all union branches must project the same width")
    width = widths.pop()
    columns = tuple(output_columns) if output_columns else tuple(
        f"h{i}" for i in range(width)
    )
    if len(columns) != width:
        raise EvaluationError(
            f"output_columns has {len(columns)} names for width {width}"
        )

    guard = as_guard(guard)
    engine = MemoryEngine(db, guard=guard)
    rows: set[tuple] = set()
    for rule, terms in zip(union.rules, per_rule):
        assert_safe(rule)
        plan = lower_rule(
            db, rule, output_terms=terms, order_strategy=order_strategy
        )
        rows |= engine.run_plan(plan).tuples
        if guard is not None:
            guard.checkpoint(rows=len(rows), node=f"union:{union.head_name}")
    return Relation.from_distinct_rows(union.head_name, columns, rows)
