"""Evaluation of extended conjunctive queries over a :class:`Database`.

The evaluator turns each positive subgoal into a *binding relation*
(columns named after the subgoal's variables/parameters, constants and
repeated terms handled by selection), joins the binding relations in a
greedy cost-aware order, and applies arithmetic comparisons and negated
subgoals as soon as their terms are bound — negation as an anti-join,
which is sound precisely because safety guarantees the terms are bound
by positive subgoals first.

Column naming convention: a binding column is the rendered term —
``"P"`` for a variable, ``"$s"`` for a parameter — so the same term
always joins with itself across subgoals.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..errors import EvaluationError
from ..datalog.atoms import Comparison, RelationalAtom
from ..datalog.query import ConjunctiveQuery, UnionQuery
from ..datalog.safety import assert_safe
from ..datalog.terms import Constant, Term, is_bindable
from ..guard import ExecutionGuard, GuardLike, as_guard
from ..testing.faults import trip
from .catalog import Database
from .operators import anti_join, natural_join
from .relation import Relation
from .statistics import estimate_join_size


def term_column(term: Term) -> str:
    """The canonical column name for a bindable term."""
    return str(term)


def atom_binding_relation(db: Database, subgoal: RelationalAtom) -> Relation:
    """The binding relation of one (positive-polarity) relational subgoal.

    Applies constant selections and repeated-term equality selections,
    then projects to one column per distinct bindable term.  The result
    has set semantics, so duplicates introduced by the projection
    collapse — this is what makes a one-subgoal subquery like
    ``answer(B) :- baskets(B,$1)`` well defined.
    """
    base = db.get(subgoal.predicate)
    if base.arity != subgoal.arity:
        raise EvaluationError(
            f"subgoal {subgoal} has arity {subgoal.arity} but relation "
            f"{base.name!r} has arity {base.arity}"
        )

    # Positional filter: constants must match; repeated bindable terms
    # must agree.
    first_position: dict[Term, int] = {}
    constant_checks: list[tuple[int, object]] = []
    equality_checks: list[tuple[int, int]] = []
    output_positions: list[int] = []
    output_columns: list[str] = []
    for i, term in enumerate(subgoal.terms):
        if isinstance(term, Constant):
            constant_checks.append((i, term.value))
        elif term in first_position:
            equality_checks.append((first_position[term], i))
        else:
            first_position[term] = i
            output_positions.append(i)
            output_columns.append(term_column(term))

    rows: set[tuple] = set()
    for row in base.tuples:
        if any(row[i] != v for i, v in constant_checks):
            continue
        if any(row[i] != row[j] for i, j in equality_checks):
            continue
        rows.add(tuple(row[p] for p in output_positions))
    return Relation(f"bind:{subgoal.predicate}", tuple(output_columns), rows)


def _unit_relation() -> Relation:
    """The zero-column relation with one (empty) tuple — the identity of
    the natural join, used for queries with no positive subgoals."""
    return Relation("unit", (), {()})


def _apply_comparison(current: Relation, comp: Comparison) -> Relation:
    """Filter the binding relation by an arithmetic subgoal whose terms
    are all bound (or constant)."""

    def resolve(term: Term):
        if isinstance(term, Constant):
            return None, term.value
        return current.column_position(term_column(term)), None

    left_pos, left_const = resolve(comp.left)
    right_pos, right_const = resolve(comp.right)
    fn = comp.op.fn
    rows = set()
    for row in current.tuples:
        left = row[left_pos] if left_pos is not None else left_const
        right = row[right_pos] if right_pos is not None else right_const
        if fn(left, right):
            rows.add(row)
    return Relation(current.name, current.columns, rows)


def _terms_bound(current: Relation, subgoal) -> bool:
    cols = set(current.columns)
    return all(term_column(t) in cols for t in subgoal.bindable_terms())


def greedy_join_order(db: Database, atoms: Sequence[RelationalAtom]) -> list[int]:
    """A greedy join order over the positive subgoals.

    Start from the smallest binding relation; repeatedly append the
    subgoal with the smallest estimated join result among those sharing
    a bound term (avoiding cartesian products until forced).  This is
    the cheap stand-in for the full Selinger search the paper defers to
    [G*79]; the plan optimizer explores FILTER placement, not join
    orders, so a decent deterministic order suffices.
    """
    if not atoms:
        return []
    sizes = [len(db.get(a.predicate)) for a in atoms]
    stats = [db.stats(a.predicate) for a in atoms]
    columns = [frozenset(term_column(t) for t in a.bindable_terms()) for a in atoms]

    remaining = set(range(len(atoms)))
    order: list[int] = []
    start = min(remaining, key=lambda i: sizes[i])
    order.append(start)
    remaining.remove(start)
    bound: set[str] = set(columns[start])

    while remaining:
        connected = [i for i in remaining if columns[i] & bound]
        pool = connected or sorted(remaining)
        if connected:
            # Favor the smallest estimated join growth.
            def join_cost(i: int) -> float:
                shared = columns[i] & bound
                return estimate_join_size(
                    stats[order[-1]], stats[i], tuple(shared)
                )

            pick = min(pool, key=lambda i: (join_cost(i), sizes[i]))
        else:
            pick = min(pool, key=lambda i: sizes[i])
        order.append(pick)
        remaining.remove(pick)
        bound |= columns[pick]
    return order


def evaluate_conjunctive(
    db: Database,
    query: ConjunctiveQuery,
    output_terms: Sequence[Term] | None = None,
    join_order: Sequence[int] | None = None,
    check_safe: bool = True,
    guard: GuardLike = None,
) -> Relation:
    """Evaluate one extended conjunctive query.

    Args:
        db: the database to evaluate against.
        query: a safe extended CQ.
        output_terms: terms to project the result onto; defaults to the
            query's head terms.  Every bindable output term must occur in
            a positive subgoal.
        join_order: optional explicit ordering of the positive subgoals
            (indices into ``query.positive_atoms()``); defaults to the
            greedy order.
        check_safe: set ``False`` to skip the safety assertion when the
            caller has already checked (the optimizer's hot path).
        guard: optional :class:`~repro.guard.ExecutionGuard` (or
            :class:`~repro.guard.ResourceBudget` /
            :class:`~repro.guard.CancellationToken`) checked after every
            join step.

    Returns:
        A relation whose columns are the rendered output terms, with
        set semantics.
    """
    guard = as_guard(guard)
    if check_safe:
        assert_safe(query)
    if output_terms is None:
        output_terms = list(query.head_terms)

    positives = query.positive_atoms()
    pending_comparisons = list(query.comparisons())
    pending_negations = list(query.negated_atoms())

    if join_order is None:
        order = greedy_join_order(db, positives)
    else:
        order = list(join_order)
        if sorted(order) != list(range(len(positives))):
            raise EvaluationError(
                f"join_order {order} is not a permutation of the "
                f"{len(positives)} positive subgoals"
            )

    # Identical subgoals (up to renaming nothing — literally equal atoms,
    # common in self-joins like baskets(B,$1)/baskets(B,$2) only when the
    # terms coincide) share one binding relation per evaluation.
    binding_cache: dict[RelationalAtom, Relation] = {}

    def bind(subgoal: RelationalAtom) -> Relation:
        cached = binding_cache.get(subgoal)
        if cached is None:
            cached = atom_binding_relation(db, subgoal)
            binding_cache[subgoal] = cached
        return cached

    current = _unit_relation()
    for idx in order:
        trip("relational.join")
        started = time.perf_counter()
        before = len(current)
        current = natural_join(current, bind(positives[idx]))
        current = _apply_pending(db, current, pending_comparisons, pending_negations)
        if guard is not None:
            node = f"join:{positives[idx].predicate}"
            guard.note_step(
                name=node,
                description=str(positives[idx]),
                input_tuples=before,
                output_assignments=len(current),
                seconds=time.perf_counter() - started,
                filtered=False,
            )
            guard.checkpoint(rows=len(current), node=node)
    # Queries with no positive atoms still must apply constant-only
    # subgoals (safety allows e.g. `answer(1) :- 1 < 2`).
    current = _apply_pending(db, current, pending_comparisons, pending_negations)
    if pending_comparisons or pending_negations:
        left = pending_comparisons + pending_negations
        raise EvaluationError(
            f"subgoals never became bound: {[str(s) for s in left]} "
            "(query should have failed the safety check)"
        )

    return _project_output(current, output_terms, name=query.head_name)


def _apply_pending(
    db: Database,
    current: Relation,
    comparisons: list[Comparison],
    negations: list[RelationalAtom],
) -> Relation:
    """Apply every pending comparison/negation whose terms are now bound."""
    progress = True
    while progress:
        progress = False
        for comp in list(comparisons):
            if _terms_bound(current, comp):
                current = _apply_comparison(current, comp)
                comparisons.remove(comp)
                progress = True
        for neg in list(negations):
            if _terms_bound(current, neg):
                neg_rel = atom_binding_relation(db, neg.with_positive_polarity())
                if neg.bindable_terms():
                    current = anti_join(current, neg_rel, name=current.name)
                else:
                    # Ground negation: NOT p(c1,...,ck) empties the result
                    # iff the selected relation is nonempty.
                    if len(neg_rel):
                        current = Relation(current.name, current.columns)
                negations.remove(neg)
                progress = True
    return current


def _project_output(
    current: Relation, output_terms: Sequence[Term], name: str
) -> Relation:
    columns: list[str] = []
    constants: list[tuple[int, object]] = []
    for i, term in enumerate(output_terms):
        if is_bindable(term):
            col = term_column(term)
            if col not in current.columns:
                raise EvaluationError(
                    f"output term {term} is not bound by any positive subgoal"
                )
            columns.append(col)
        else:
            constants.append((i, term.value))  # type: ignore[union-attr]
    projected = current.project(columns, name=name)
    if not constants:
        return projected
    # Re-insert constant output positions.
    out_cols: list[str] = []
    bindable_iter = iter(projected.columns)
    for i, term in enumerate(output_terms):
        if is_bindable(term):
            out_cols.append(next(bindable_iter))
        else:
            out_cols.append(f"_const{i}")
    rows = set()
    for row in projected.tuples:
        row_list = list(row)
        for i, value in constants:
            row_list.insert(i, value)
        rows.add(tuple(row_list))
    return Relation(name, tuple(out_cols), rows)


def evaluate_union(
    db: Database,
    union: UnionQuery,
    output_terms_per_rule: Sequence[Sequence[Term]] | None = None,
    output_columns: Sequence[str] | None = None,
    guard: GuardLike = None,
) -> Relation:
    """Evaluate a union query as the set union of its rules' results.

    Rules may use different head variable names (Fig. 4's ``D`` vs
    ``A``); results are aligned positionally.  ``output_columns`` names
    the unified columns (defaults to ``h0..h{k-1}``).
    """
    per_rule = output_terms_per_rule or [list(r.head_terms) for r in union.rules]
    if len(per_rule) != len(union.rules):
        raise EvaluationError(
            "output_terms_per_rule must match the number of union rules"
        )
    widths = {len(terms) for terms in per_rule}
    if len(widths) != 1:
        raise EvaluationError("all union branches must project the same width")
    width = widths.pop()
    columns = tuple(output_columns) if output_columns else tuple(
        f"h{i}" for i in range(width)
    )
    if len(columns) != width:
        raise EvaluationError(
            f"output_columns has {len(columns)} names for width {width}"
        )

    guard = as_guard(guard)
    rows: set[tuple] = set()
    for rule, terms in zip(union.rules, per_rule):
        result = evaluate_conjunctive(db, rule, output_terms=terms, guard=guard)
        rows |= result.tuples
        if guard is not None:
            guard.checkpoint(rows=len(rows), node=f"union:{union.head_name}")
    return Relation(union.head_name, columns, rows)
