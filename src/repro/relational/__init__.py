"""Relational substrate: the in-memory engine flocks run on.

Set-semantics relations, hash joins/anti-joins, grouped aggregation
(the HAVING machinery), a statistics-bearing catalog, and an evaluator
for extended conjunctive queries and unions.
"""

from .aggregates import (
    AggregateFunction,
    group_aggregate,
    grouped_counts,
    having,
)
from .catalog import Database, database_from_dict
from .dictionary import ValueDictionary, stable_hash
from .explain import explain_conjunctive
from .evaluate import (
    atom_binding_relation,
    evaluate_conjunctive,
    evaluate_union,
    greedy_join_order,
    term_column,
)
from .io import load_database, load_relation, save_database, save_relation
from .joinorder import (
    AtomBounds,
    atom_bounds,
    chain_upper_bounds,
    join_bounds,
    selinger_join_order,
    ues_join_order,
)
from .operators import (
    anti_join,
    cartesian_product,
    natural_join,
    semi_join,
    shared_columns,
    union_all,
)
from .relation import Relation, relation_from_rows
from .statistics import (
    RelationStats,
    estimate_chain_join_size,
    estimate_join_size,
    selectivity_of_filter,
    tuples_per_assignment,
)

__all__ = [
    "AggregateFunction",
    "AtomBounds",
    "Database",
    "Relation",
    "RelationStats",
    "ValueDictionary",
    "anti_join",
    "atom_binding_relation",
    "atom_bounds",
    "cartesian_product",
    "chain_upper_bounds",
    "database_from_dict",
    "estimate_chain_join_size",
    "estimate_join_size",
    "evaluate_conjunctive",
    "evaluate_union",
    "explain_conjunctive",
    "greedy_join_order",
    "group_aggregate",
    "grouped_counts",
    "having",
    "join_bounds",
    "load_database",
    "load_relation",
    "natural_join",
    "relation_from_rows",
    "save_database",
    "save_relation",
    "selectivity_of_filter",
    "selinger_join_order",
    "semi_join",
    "shared_columns",
    "stable_hash",
    "term_column",
    "tuples_per_assignment",
    "ues_join_order",
    "union_all",
]
