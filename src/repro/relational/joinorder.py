"""Join ordering: the greedy default and Selinger-style DP ([G*79]).

The paper defers join ordering to "the general theory of cost-based
optimization ([G*79])".  :func:`greedy_join_order` is the fast default
(smallest relation first, then smallest estimated growth);
:func:`selinger_join_order` is the classic DP over atom subsets
producing the best **left-deep** order under the independence cost
model, for queries of up to a dozen or so subgoals (the paper: "queries
tend to be small, exponential searches are often computationally
feasible").  Both produce orders the physical planner
(:mod:`repro.engine.planner`) lowers into the same plan IR, so what
``explain`` prints is what the engines run.
"""

from __future__ import annotations

from typing import Sequence

from ..datalog.atoms import RelationalAtom
from .binding import term_column
from .catalog import Database
from .statistics import RelationStats, estimate_join_size


def greedy_join_order(db: Database, atoms: Sequence[RelationalAtom]) -> list[int]:
    """A greedy join order over the positive subgoals.

    Start from the smallest binding relation; repeatedly append the
    subgoal with the smallest estimated join result among those sharing
    a bound term (avoiding cartesian products until forced).  This is
    the cheap stand-in for the full Selinger search the paper defers to
    [G*79]; the plan optimizer explores FILTER placement, not join
    orders, so a decent deterministic order suffices.
    """
    if not atoms:
        return []
    sizes = [len(db.get(a.predicate)) for a in atoms]
    stats = [db.stats(a.predicate) for a in atoms]
    columns = [frozenset(term_column(t) for t in a.bindable_terms()) for a in atoms]

    remaining = set(range(len(atoms)))
    order: list[int] = []
    start = min(remaining, key=lambda i: sizes[i])
    order.append(start)
    remaining.remove(start)
    bound: set[str] = set(columns[start])

    while remaining:
        connected = [i for i in remaining if columns[i] & bound]
        pool = connected or sorted(remaining)
        if connected:
            # Favor the smallest estimated join growth.
            def join_cost(i: int) -> float:
                shared = columns[i] & bound
                return estimate_join_size(
                    stats[order[-1]], stats[i], tuple(shared)
                )

            pick = min(pool, key=lambda i: (join_cost(i), sizes[i]))
        else:
            pick = min(pool, key=lambda i: sizes[i])
        order.append(pick)
        remaining.remove(pick)
        bound |= columns[pick]
    return order


def _atom_columns(db: Database, atom: RelationalAtom) -> frozenset[str]:
    return frozenset(str(t) for t in atom.bindable_terms())


def _join_estimate(
    left_size: float,
    left_columns: frozenset[str],
    right: RelationStats,
    right_atom_columns: frozenset[str],
    db: Database,
    right_atom: RelationalAtom,
) -> float:
    """Estimated |left ⋈ right| with distinct counts taken from the
    right atom's base relation (the left side's distinct counts are
    unknown mid-DP; bounding by the right's is the standard
    simplification)."""
    shared = left_columns & right_atom_columns
    size = left_size * right.cardinality
    base_columns = db.get(right_atom.predicate).columns
    position_of: dict[str, int] = {}
    for position, term in enumerate(right_atom.terms):
        name = str(term)
        if name in right_atom_columns and name not in position_of:
            if position < len(base_columns):
                position_of[name] = position
    for column in shared:
        if column in position_of:
            d = right.distinct.get(base_columns[position_of[column]], 1)
        else:
            d = 1
        size /= max(d, 1)
    return size


def selinger_join_order(
    db: Database, atoms: Sequence[RelationalAtom], max_atoms: int = 14
) -> list[int]:
    """The cheapest left-deep join order by total intermediate tuples.

    DP state: a bitmask of joined atoms → (cumulative cost, result-size
    estimate, bound columns, order).  Cartesian products are implicitly
    penalized by the cost model (no shared columns → no division).
    Falls back to the identity order beyond ``max_atoms`` (2^n states).
    """
    n = len(atoms)
    if n == 0:
        return []
    if n == 1:
        return [0]
    if n > max_atoms:
        return list(range(n))

    stats = [db.stats(a.predicate) for a in atoms]
    columns = [_atom_columns(db, a) for a in atoms]

    # state: mask -> (cumulative_cost, result_size, bound_columns, order)
    State = tuple[float, float, frozenset, tuple]
    best: dict[int, State] = {}
    for i in range(n):
        size = float(stats[i].cardinality)
        best[1 << i] = (size, size, columns[i], (i,))

    # Process masks in increasing popcount so every extension sees a
    # finished prefix state.
    all_masks = sorted(range(1, 1 << n), key=lambda m: (bin(m).count("1"), m))
    for mask in all_masks:
        state = best.get(mask)
        if state is None:
            continue
        cost, size, bound, order = state
        for j in range(n):
            bit = 1 << j
            if mask & bit:
                continue
            estimate = _join_estimate(
                size, bound, stats[j], columns[j], db, atoms[j]
            )
            new_mask = mask | bit
            new_cost = cost + estimate
            current = best.get(new_mask)
            if current is None or new_cost < current[0]:
                best[new_mask] = (
                    new_cost,
                    estimate,
                    bound | columns[j],
                    order + (j,),
                )

    full = (1 << n) - 1
    return list(best[full][3])
