"""Join ordering: greedy, Selinger-style DP ([G*79]), and UES bounds.

The paper defers join ordering to "the general theory of cost-based
optimization ([G*79])".  :func:`greedy_join_order` is the fast default
(smallest relation first, then smallest estimated growth);
:func:`selinger_join_order` is the classic DP over atom subsets
producing the best **left-deep** order under the independence cost
model, for queries of up to a dozen or so subgoals (the paper: "queries
tend to be small, exponential searches are often computationally
feasible").  :func:`ues_join_order` is the pessimistic alternative: it
orders stages by *guaranteed* upper bounds on each join's output
(UES-style, after Hertzschuch et al.), built from exact per-column
distinct counts and maximum per-value frequencies instead of
independence estimates — on skew-correlated data, where averages lie
but maxima cannot, the bound-minimal order avoids the blown-up
intermediates the estimate-minimal order walks into.  All three produce
orders the physical planner (:mod:`repro.engine.planner`) lowers into
the same plan IR, so what ``explain`` prints is what the engines run.

The bound algebra (:class:`AtomBounds`, :func:`chain_upper_bounds`) is
shared with the planner, which annotates every lowered stage with its
guaranteed output bound: for a running prefix ``L`` and a new scan
``R`` joined on columns ``C``, each column ``c`` certifies

    |L ⋈ R|  ≤  min( min(d_L(c), d_R(c)) · mf_L(c) · mf_R(c),
                     |L| · mf_R(c),  |R| · mf_L(c) )

where ``d`` is a distinct-count upper bound and ``mf`` a max-frequency
upper bound, both propagated pessimistically through the prefix.  A
scan restricted by a runtime filter of ``k`` survivor keys on column
``c`` additionally certifies ``|R| ≤ k · mf_R(c)`` and ``d_R(c) ≤ k`` —
that is how survivor sets served from the session cache tighten the
bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..datalog.atoms import RelationalAtom, is_bindable
from .binding import term_column
from .catalog import Database
from .statistics import RelationStats, estimate_join_size

#: Per-atom scan caps for the bound algebra: atom index → rendered
#: binding column → number of distinct survivor keys a runtime filter
#: restricts that column's scan to.
ScanCaps = Mapping[int, Mapping[str, int]]


def greedy_join_order(db: Database, atoms: Sequence[RelationalAtom]) -> list[int]:
    """A greedy join order over the positive subgoals.

    Start from the smallest binding relation; repeatedly append the
    subgoal with the smallest estimated join result among those sharing
    a bound term (avoiding cartesian products until forced).  This is
    the cheap stand-in for the full Selinger search the paper defers to
    [G*79]; the plan optimizer explores FILTER placement, not join
    orders, so a decent deterministic order suffices.
    """
    if not atoms:
        return []
    sizes = [len(db.get(a.predicate)) for a in atoms]
    stats = [db.stats(a.predicate) for a in atoms]
    columns = [frozenset(term_column(t) for t in a.bindable_terms()) for a in atoms]

    remaining = set(range(len(atoms)))
    order: list[int] = []
    start = min(remaining, key=lambda i: sizes[i])
    order.append(start)
    remaining.remove(start)
    bound: set[str] = set(columns[start])

    while remaining:
        connected = [i for i in remaining if columns[i] & bound]
        pool = connected or sorted(remaining)
        if connected:
            # Favor the smallest estimated join growth.
            def join_cost(i: int) -> float:
                shared = columns[i] & bound
                return estimate_join_size(
                    stats[order[-1]], stats[i], tuple(shared)
                )

            pick = min(pool, key=lambda i: (join_cost(i), sizes[i]))
        else:
            pick = min(pool, key=lambda i: sizes[i])
        order.append(pick)
        remaining.remove(pick)
        bound |= columns[pick]
    return order


def _atom_columns(db: Database, atom: RelationalAtom) -> frozenset[str]:
    return frozenset(str(t) for t in atom.bindable_terms())


def _join_estimate(
    left_size: float,
    left_columns: frozenset[str],
    right: RelationStats,
    right_atom_columns: frozenset[str],
    db: Database,
    right_atom: RelationalAtom,
) -> float:
    """Estimated |left ⋈ right| with distinct counts taken from the
    right atom's base relation (the left side's distinct counts are
    unknown mid-DP; bounding by the right's is the standard
    simplification)."""
    shared = left_columns & right_atom_columns
    size = left_size * right.cardinality
    base_columns = db.get(right_atom.predicate).columns
    position_of: dict[str, int] = {}
    for position, term in enumerate(right_atom.terms):
        name = str(term)
        if name in right_atom_columns and name not in position_of:
            if position < len(base_columns):
                position_of[name] = position
    for column in shared:
        if column in position_of:
            d = right.distinct.get(base_columns[position_of[column]], 1)
        else:
            d = 1
        size /= max(d, 1)
    return size


def selinger_join_order(
    db: Database, atoms: Sequence[RelationalAtom], max_atoms: int = 14
) -> list[int]:
    """The cheapest left-deep join order by total intermediate tuples.

    DP state: a bitmask of joined atoms → (cumulative cost, result-size
    estimate, bound columns, order).  Cartesian products are implicitly
    penalized by the cost model (no shared columns → no division).
    Falls back to the identity order beyond ``max_atoms`` (2^n states).
    """
    n = len(atoms)
    if n == 0:
        return []
    if n == 1:
        return [0]
    if n > max_atoms:
        return list(range(n))

    stats = [db.stats(a.predicate) for a in atoms]
    columns = [_atom_columns(db, a) for a in atoms]

    # state: mask -> (cumulative_cost, result_size, bound_columns, order)
    State = tuple[float, float, frozenset, tuple]
    best: dict[int, State] = {}
    for i in range(n):
        size = float(stats[i].cardinality)
        best[1 << i] = (size, size, columns[i], (i,))

    # Process masks in increasing popcount so every extension sees a
    # finished prefix state.
    all_masks = sorted(range(1, 1 << n), key=lambda m: (bin(m).count("1"), m))
    for mask in all_masks:
        state = best.get(mask)
        if state is None:
            continue
        cost, size, bound, order = state
        for j in range(n):
            bit = 1 << j
            if mask & bit:
                continue
            estimate = _join_estimate(
                size, bound, stats[j], columns[j], db, atoms[j]
            )
            new_mask = mask | bit
            new_cost = cost + estimate
            current = best.get(new_mask)
            if current is None or new_cost < current[0]:
                best[new_mask] = (
                    new_cost,
                    estimate,
                    bound | columns[j],
                    order + (j,),
                )

    full = (1 << n) - 1
    return list(best[full][3])


# ----------------------------------------------------------------------
# Pessimistic (UES) ordering: guaranteed upper bounds, never estimates
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AtomBounds:
    """Guaranteed statistics for a scan or a join prefix, over rendered
    binding columns: an output-cardinality upper bound plus per-column
    distinct-count and max-frequency upper bounds.  Every field is a
    certified *bound* (never an estimate), so any order ranked by these
    numbers is ranked by worst cases."""

    card: float
    distinct: dict[str, float]
    freq: dict[str, float]

    def columns(self) -> frozenset[str]:
        return frozenset(self.distinct)


def atom_bounds(
    db: Database,
    atom: RelationalAtom,
    caps: Mapping[str, int] | None = None,
) -> AtomBounds:
    """Exact base statistics for one positive subgoal's scan, as bounds.

    ``caps`` maps rendered binding columns to runtime-filter key counts:
    a scan restricted to ``k`` distinct keys on column ``c`` keeps at
    most ``k * max_frequency(c)`` rows and at most ``k`` distinct values
    of ``c``.
    """
    stats = db.stats(atom.predicate)
    base_columns = db.get(atom.predicate).columns
    distinct: dict[str, float] = {}
    freq: dict[str, float] = {}
    card = float(stats.cardinality)
    for position, term in enumerate(atom.terms):
        if not is_bindable(term):
            continue
        column = term_column(term)
        if column in distinct:
            continue
        if position < len(base_columns):
            base = base_columns[position]
            distinct[column] = float(stats.distinct_count(base))
            freq[column] = float(stats.max_frequency(base))
        else:
            distinct[column] = card
            freq[column] = card
    if caps:
        for column, keys in caps.items():
            if column in distinct:
                distinct[column] = min(distinct[column], float(keys))
                card = min(card, float(keys) * freq[column])
    for column in distinct:
        distinct[column] = min(distinct[column], card)
        freq[column] = min(freq[column], card)
    return AtomBounds(card, distinct, freq)


def join_bounds(left: AtomBounds, right: AtomBounds) -> AtomBounds:
    """The bound algebra's join: certified output bounds for
    ``left ⋈ right`` (natural join on the shared columns; cartesian
    product when none are shared)."""
    shared = left.columns() & right.columns()
    card = left.card * right.card
    if shared:
        for column in shared:
            card = min(
                card,
                min(left.distinct[column], right.distinct[column])
                * left.freq[column]
                * right.freq[column],
                left.card * right.freq[column],
                right.card * left.freq[column],
            )
        # At most this many right (resp. left) rows can match any one
        # row of the other side — the per-row fan-out certificate.
        fan_from_right = min(right.freq[c] for c in shared)
        fan_from_left = min(left.freq[c] for c in shared)
    else:
        fan_from_right = right.card
        fan_from_left = left.card
    distinct: dict[str, float] = {}
    freq: dict[str, float] = {}
    for column in left.columns() | right.columns():
        if column in shared:
            d = min(left.distinct[column], right.distinct[column])
            f = left.freq[column] * right.freq[column]
        elif column in left.distinct:
            d = left.distinct[column]
            f = left.freq[column] * fan_from_right
        else:
            d = right.distinct[column]
            f = right.freq[column] * fan_from_left
        distinct[column] = min(d, card)
        freq[column] = min(f, card)
    return AtomBounds(card, distinct, freq)


def ues_join_order(
    db: Database,
    atoms: Sequence[RelationalAtom],
    scan_caps: ScanCaps | None = None,
) -> list[int]:
    """A left-deep join order minimizing guaranteed upper bounds.

    Greedy over the bound algebra: the first join is the connected
    *pair* of subgoals with the smallest certified output bound (not a
    fixed smallest-relation start — a tiny relation whose only join
    partner fans out explosively is a terrible opening move, and the
    pair bound knows it), then the order repeatedly appends the
    connected subgoal whose join yields the smallest certified bound
    (cartesian products only when forced).  Unlike the estimate-driven
    orders, a skew-correlated join — cheap on average, explosive on its
    hot keys — carries its worst case in the bound and is deferred until
    selective subgoals have shrunk the prefix.
    """
    n = len(atoms)
    if n == 0:
        return []
    if n == 1:
        return [0]
    caps = scan_caps or {}
    profiles = [
        atom_bounds(db, atom, caps.get(index))
        for index, atom in enumerate(atoms)
    ]
    remaining = set(range(n))
    best_pair: tuple[int, int] | None = None
    best_key: tuple[float, float, int, int] | None = None
    for i in range(n):
        for j in range(i + 1, n):
            if not (profiles[i].columns() & profiles[j].columns()):
                continue
            key = (
                join_bounds(profiles[i], profiles[j]).card,
                min(profiles[i].card, profiles[j].card),
                i,
                j,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_pair = (i, j)
    if best_pair is None:
        # Every pair is a cartesian product; open with the smallest.
        start = min(remaining, key=lambda i: (profiles[i].card, i))
        order = [start]
        remaining.remove(start)
        state = profiles[start]
    else:
        i, j = best_pair
        first, second = (
            (i, j) if (profiles[i].card, i) <= (profiles[j].card, j)
            else (j, i)
        )
        order = [first, second]
        remaining -= {first, second}
        state = join_bounds(profiles[first], profiles[second])

    while remaining:
        connected = [
            i for i in remaining if profiles[i].columns() & state.columns()
        ]
        pool = connected or sorted(remaining)
        pick = min(
            pool,
            key=lambda i: (join_bounds(state, profiles[i]).card,
                           profiles[i].card, i),
        )
        state = join_bounds(state, profiles[pick])
        order.append(pick)
        remaining.remove(pick)
    return order


def chain_upper_bounds(
    db: Database,
    atoms: Sequence[RelationalAtom],
    order: Sequence[int],
    scan_caps: ScanCaps | None = None,
) -> list[float]:
    """The certified output bound after each stage of a left-deep order.

    ``result[k]`` bounds the intermediate after joining
    ``atoms[order[0]] ⋈ ... ⋈ atoms[order[k]]`` — what the planner
    records on each lowered stage so ``explain`` can print estimate and
    bound side by side and the dynamic evaluator can re-plan when an
    observed result is far below its bound.
    """
    caps = scan_caps or {}
    bounds: list[float] = []
    state: AtomBounds | None = None
    for index in order:
        profile = atom_bounds(db, atoms[index], caps.get(index))
        state = profile if state is None else join_bounds(state, profile)
        bounds.append(state.card)
    return bounds
