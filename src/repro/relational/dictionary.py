"""Interned value dictionaries for dictionary-encoded columns.

The third :class:`~repro.relational.relation.Relation` representation —
typed, flat code columns — needs a mapping between arbitrary Python
values and small integer codes.  A :class:`ValueDictionary` provides it:
an append-only intern table where equal values (by Python ``==``/``hash``
semantics, exactly the semantics the row-set representation already uses
for deduplication) always receive the same code.

One dictionary is shared per :class:`~repro.relational.catalog.Database`,
so codes are *join-comparable across relations*: two code columns encoded
against the same dictionary can be hash-joined, compared, grouped, and
partitioned without ever touching the underlying values.  Codes fit in a
signed 64-bit slot (``array('q')``), which is what lets the parallel
engine ship whole relations through ``multiprocessing.shared_memory`` as
flat buffers.

Interning is append-only, which gives a cheap cross-process sync
protocol: a worker seeded with a snapshot of the first *n* values can be
extended with ``suffix(n)`` later, and every code below *n* means the
same value on both sides forever.
"""

from __future__ import annotations

import sys
import threading
import zlib
from typing import Iterable, Sequence


def stable_hash(value: object) -> int:
    """A process-independent hash of one value.

    Python's builtin ``hash`` is salted per process for strings, so it
    cannot be used to agree on a partition assignment across workers.
    CRC-32 of the canonical ``repr`` is stable, fast, and good enough
    for load balancing.
    """
    return zlib.crc32(repr(value).encode("utf-8"))


class ValueDictionary:
    """An append-only value ⇄ code intern table shared by relations.

    Codes are dense non-negative integers assigned in first-seen order.
    Equality follows Python semantics: ``1``, ``1.0`` and ``True`` share
    one code, mirroring how they would collapse in a row set.  The
    instance is thread-safe; interning takes a lock, pure lookups do not.
    """

    __slots__ = ("values", "_index", "_lock", "_tables", "_value_bytes")

    def __init__(self, values: Iterable[object] = ()) -> None:
        self.values: list[object] = []
        self._index: dict[object, int] = {}
        self._lock = threading.RLock()
        #: parts -> per-code partition table (``table[code] = partition``)
        self._tables: dict[int, list[int]] = {}
        self._value_bytes = 0
        if values:
            self.extend(values)

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def intern(self, value: object) -> int:
        """The code for ``value``, assigning a fresh one if unseen."""
        code = self._index.get(value)
        if code is not None:
            return code
        with self._lock:
            code = self._index.get(value)
            if code is None:
                code = len(self.values)
                self.values.append(value)
                self._index[value] = code
                self._value_bytes += sys.getsizeof(value)
            return code

    def code_of(self, value: object) -> int | None:
        """The code for ``value`` if already interned, else None.

        Never interns — selection against a constant that was never
        loaded must see "no code" (an empty result), not invent one.
        """
        return self._index.get(value)

    def encode_column(self, column: Sequence[object]) -> list[int]:
        """Bulk-encode one value column into a row-aligned code list."""
        try:
            # C-speed fast path: every value already interned.
            return list(map(self._index.__getitem__, column))
        except KeyError:
            pass
        intern = self.intern
        return [intern(v) for v in column]

    def decode_column(self, codes: Iterable[int]) -> list[object]:
        """Bulk-decode a code column back into values."""
        return list(map(self.values.__getitem__, codes))

    # ------------------------------------------------------------------
    # Partition tables (per-code, cached)
    # ------------------------------------------------------------------

    def partition_table(self, parts: int) -> list[int]:
        """``table[code] = stable_hash(value) % parts`` for every code.

        Cached per ``parts`` and extended in place when the dictionary
        has grown since the last call, so hash-partitioning a relation
        costs one list lookup per row instead of a ``repr`` + CRC-32.
        """
        with self._lock:
            table = self._tables.get(parts)
            if table is None:
                table = []
                self._tables[parts] = table
            if len(table) < len(self.values):
                table.extend(
                    stable_hash(v) % parts
                    for v in self.values[len(table):]
                )
            return table

    # ------------------------------------------------------------------
    # Cross-process sync (append-only snapshots)
    # ------------------------------------------------------------------

    def snapshot_size(self) -> int:
        """How many values exist right now (a prefix marker)."""
        with self._lock:
            return len(self.values)

    def suffix(self, start: int) -> list[object]:
        """The values interned at code ``start`` and beyond."""
        with self._lock:
            return list(self.values[start:])

    def extend(self, values: Iterable[object]) -> None:
        """Intern ``values`` in order (idempotent for known values)."""
        intern = self.intern
        for value in values:
            intern(value)

    # ------------------------------------------------------------------
    # Accounting / pickling
    # ------------------------------------------------------------------

    def approx_bytes(self) -> int:
        """Approximate heap footprint of the interned values."""
        with self._lock:
            # values list + index dict slots (8 bytes per pointer, twice)
            return self._value_bytes + 16 * len(self.values)

    def __reduce__(self) -> tuple:
        with self._lock:
            return (ValueDictionary, (list(self.values),))

    def __repr__(self) -> str:
        return f"ValueDictionary({len(self.values)} values)"


__all__ = ["ValueDictionary", "stable_hash"]
