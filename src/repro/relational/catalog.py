"""The database catalog: named base relations plus cached statistics.

A :class:`Database` is the substrate every flock/plan evaluation runs
against.  Base relations are immutable once added (replacing a relation
invalidates its cached statistics).  Plans materialize their ``ok``
relations into a *scratch* overlay so the base data is never polluted.

Every mutation bumps a **per-relation version counter** (and a global
one), so consumers holding derived artifacts — cached statistics,
``explain`` output, and most importantly the
:mod:`repro.session` result cache — can detect staleness *exactly*:
an artifact derived from relations ``R1..Rk`` is current iff each
``version(Ri)`` still equals the value recorded when the artifact was
built.  Versions only ever grow; removing a relation bumps its counter
too, so a later re-add under the same name is distinguishable from the
original.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import SchemaError
from .dictionary import ValueDictionary
from .relation import Relation
from .statistics import RelationStats


class Database:
    """A mapping of relation names to relations, with statistics.

    Every database owns one :class:`ValueDictionary` shared by all of
    its relations, so encoded code columns are join-comparable across
    the whole catalog (and across scratch overlays, which share the
    parent's dictionary).
    """

    def __init__(
        self,
        relations: Iterable[Relation] = (),
        dictionary: ValueDictionary | None = None,
    ) -> None:
        self._relations: dict[str, Relation] = {}
        self._stats: dict[str, RelationStats] = {}
        self._versions: dict[str, int] = {}
        self._mutations = 0
        self.dictionary = dictionary if dictionary is not None else ValueDictionary()
        for rel in relations:
            self.add(rel)

    # ------------------------------------------------------------------
    # Catalog maintenance
    # ------------------------------------------------------------------

    def add(self, relation: Relation) -> None:
        """Add or replace a relation under its own name."""
        self._relations[relation.name] = relation
        self._stats.pop(relation.name, None)
        self._bump(relation.name)

    def add_rows(
        self, name: str, columns: Sequence[str], rows: Iterable[Sequence]
    ) -> Relation:
        """Convenience: build and register a relation in one call."""
        rel = Relation(name, columns, (tuple(r) for r in rows))
        self.add(rel)
        return rel

    def remove(self, name: str) -> None:
        """Drop a relation (no-op when absent)."""
        if name in self._relations:
            del self._relations[name]
            self._stats.pop(name, None)
            self._bump(name)

    def _bump(self, name: str) -> None:
        self._versions[name] = self._versions.get(name, 0) + 1
        self._mutations += 1

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------

    def version(self, name: str | None = None) -> int:
        """The version counter of one relation, or (``name=None``) the
        global mutation counter.

        A relation's version starts at 1 when first added and grows by
        one on every replacement or removal; 0 means "never seen".  The
        global counter grows on *any* catalog mutation, so ``version()``
        is a cheap "has anything changed?" probe.
        """
        if name is None:
            return self._mutations
        return self._versions.get(name, 0)

    def versions(self, names: Iterable[str] | None = None) -> dict[str, int]:
        """A snapshot of per-relation versions.

        ``names`` restricts the snapshot (useful for recording exactly
        the relations a query reads); by default every relation ever
        seen is included.
        """
        if names is None:
            return dict(self._versions)
        return {n: self.version(n) for n in names}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> Relation:
        """The relation registered under ``name``; SchemaError with the
        known names when absent."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"unknown relation {name!r}; known: {sorted(self._relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def names(self) -> list[str]:
        """All relation names, sorted."""
        return sorted(self._relations)

    def relations(self) -> list[Relation]:
        """All relations, in name order."""
        return [self._relations[n] for n in self.names()]

    def stats(self, name: str) -> RelationStats:
        """Statistics for one relation, computed lazily and cached."""
        if name not in self._stats:
            self._stats[name] = RelationStats.of(self.get(name))
        return self._stats[name]

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def scratch(self) -> "Database":
        """A shallow overlay sharing this database's relations.

        Plans materialize their intermediate ``ok`` relations into the
        scratch copy; the original catalog is untouched.
        """
        child = Database(dictionary=self.dictionary)
        child._relations = dict(self._relations)
        child._stats = dict(self._stats)
        child._versions = dict(self._versions)
        child._mutations = self._mutations
        return child

    def encoded(self, name: str) -> Relation:
        """The relation under ``name``, encoded against this database's
        shared dictionary (encoding is cached on the relation)."""
        rel = self.get(name)
        rel.encode_with(self.dictionary)
        return rel

    def encoded_bytes(self) -> int:
        """Flat-buffer size of every relation's encoded columns (only
        counting relations that are actually encoded)."""
        return sum(
            r.encoded_nbytes()
            for r in self._relations.values()
            if r.is_encoded
        )

    def total_tuples(self) -> int:
        """Sum of cardinalities across every relation."""
        return sum(len(r) for r in self._relations.values())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{n}[{len(self._relations[n])}]" for n in self.names()
        )
        return f"Database({parts})"


def database_from_dict(
    data: Mapping[str, tuple[Sequence[str], Iterable[Sequence]]]
) -> Database:
    """Build a database from ``{name: (columns, rows)}`` — the most common
    test/example entry point."""
    db = Database()
    for name, (columns, rows) in data.items():
        db.add_rows(name, columns, rows)
    return db
