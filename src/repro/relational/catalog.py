"""The database catalog: named base relations plus cached statistics.

A :class:`Database` is the substrate every flock/plan evaluation runs
against.  Base relations are immutable once added (replacing a relation
invalidates its cached statistics).  Plans materialize their ``ok``
relations into a *scratch* overlay so the base data is never polluted.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import SchemaError
from .relation import Relation
from .statistics import RelationStats


class Database:
    """A mapping of relation names to relations, with statistics."""

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: dict[str, Relation] = {}
        self._stats: dict[str, RelationStats] = {}
        for rel in relations:
            self.add(rel)

    # ------------------------------------------------------------------
    # Catalog maintenance
    # ------------------------------------------------------------------

    def add(self, relation: Relation) -> None:
        """Add or replace a relation under its own name."""
        self._relations[relation.name] = relation
        self._stats.pop(relation.name, None)

    def add_rows(
        self, name: str, columns: Sequence[str], rows: Iterable[Sequence]
    ) -> Relation:
        """Convenience: build and register a relation in one call."""
        rel = Relation(name, columns, (tuple(r) for r in rows))
        self.add(rel)
        return rel

    def remove(self, name: str) -> None:
        """Drop a relation (no-op when absent)."""
        self._relations.pop(name, None)
        self._stats.pop(name, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> Relation:
        """The relation registered under ``name``; SchemaError with the
        known names when absent."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"unknown relation {name!r}; known: {sorted(self._relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def names(self) -> list[str]:
        """All relation names, sorted."""
        return sorted(self._relations)

    def relations(self) -> list[Relation]:
        """All relations, in name order."""
        return [self._relations[n] for n in self.names()]

    def stats(self, name: str) -> RelationStats:
        """Statistics for one relation, computed lazily and cached."""
        if name not in self._stats:
            self._stats[name] = RelationStats.of(self.get(name))
        return self._stats[name]

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def scratch(self) -> "Database":
        """A shallow overlay sharing this database's relations.

        Plans materialize their intermediate ``ok`` relations into the
        scratch copy; the original catalog is untouched.
        """
        child = Database()
        child._relations = dict(self._relations)
        child._stats = dict(self._stats)
        return child

    def total_tuples(self) -> int:
        """Sum of cardinalities across every relation."""
        return sum(len(r) for r in self._relations.values())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{n}[{len(self._relations[n])}]" for n in self.names()
        )
        return f"Database({parts})"


def database_from_dict(
    data: Mapping[str, tuple[Sequence[str], Iterable[Sequence]]]
) -> Database:
    """Build a database from ``{name: (columns, rows)}`` — the most common
    test/example entry point."""
    db = Database()
    for name, (columns, rows) in data.items():
        db.add_rows(name, columns, rows)
    return db
