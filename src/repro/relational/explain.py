"""EXPLAIN: the textual rendering of the physical plan we execute.

There is no separate explain code path any more: the query is lowered
by :func:`repro.engine.planner.lower_rule` — the same lowering every
strategy executes — and the resulting
:class:`~repro.engine.ir.PhysicalPlan` renders itself.  Join order,
per-step size estimates, and where comparisons and negations attach are
read off the plan object, so the printed plan cannot drift from the
executed one.
"""

from __future__ import annotations

from ..datalog.query import ConjunctiveQuery
from ..engine.planner import lower_rule
from .catalog import Database


def explain_conjunctive(
    db: Database,
    query: ConjunctiveQuery,
    order_strategy: str = "greedy",
) -> str:
    """A multi-line plan description for one rule.

    ``order_strategy`` is ``"greedy"`` (the evaluator's default) or
    ``"selinger"`` (the DP orderer).
    """
    return lower_rule(db, query, order_strategy=order_strategy).render()
