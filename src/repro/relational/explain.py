"""EXPLAIN: a textual account of how a query would be evaluated.

Mirrors :func:`repro.relational.evaluate.evaluate_conjunctive` without
touching tuples beyond the statistics already cached: join order,
per-step size estimates, where comparisons and negations attach.  Used
by the CLI and handy when debugging why a flock is slow.
"""

from __future__ import annotations

from typing import Sequence

from ..datalog.atoms import Comparison, RelationalAtom
from ..datalog.query import ConjunctiveQuery
from .catalog import Database
from .evaluate import greedy_join_order, term_column
from .joinorder import selinger_join_order


def explain_conjunctive(
    db: Database,
    query: ConjunctiveQuery,
    order_strategy: str = "greedy",
) -> str:
    """A multi-line plan description for one rule.

    ``order_strategy`` is ``"greedy"`` (the evaluator's default) or
    ``"selinger"`` (the DP orderer).
    """
    positives = query.positive_atoms()
    if order_strategy == "greedy":
        order = greedy_join_order(db, positives)
    elif order_strategy == "selinger":
        order = selinger_join_order(db, positives)
    else:
        raise ValueError(
            f"unknown order strategy {order_strategy!r}; "
            "use 'greedy' or 'selinger'"
        )

    pending_comparisons = list(query.comparisons())
    pending_negations = list(query.negated_atoms())

    lines = [f"EXPLAIN ({order_strategy} join order) for: {query}"]
    bound: set[str] = set()
    running_estimate = 1.0
    for position, idx in enumerate(order):
        atom = positives[idx]
        stats = db.stats(atom.predicate)
        atom_columns = {term_column(t) for t in atom.bindable_terms()}
        shared = sorted(bound & atom_columns)
        if position == 0:
            running_estimate = float(stats.cardinality)
            lines.append(
                f"  scan {atom}  (~{stats.cardinality} tuples)"
            )
        else:
            # Independence estimate with the running size as the left
            # side; join-column distincts bounded by the right relation's.
            size = running_estimate * stats.cardinality
            for shared_column in shared:
                base_column = _column_for(db, atom, shared_column)
                size /= max(stats.distinct_count(base_column), 1)
            running_estimate = size
            on = f" on ({', '.join(shared)})" if shared else " (cartesian!)"
            lines.append(
                f"  join {atom}{on}  (~{running_estimate:,.0f} tuples)"
            )
        bound |= atom_columns

        for comp in list(pending_comparisons):
            if all(term_column(t) in bound for t in comp.bindable_terms()):
                lines.append(f"    then filter: {comp}")
                pending_comparisons.remove(comp)
        for neg in list(pending_negations):
            if all(term_column(t) in bound for t in neg.bindable_terms()):
                lines.append(f"    then anti-join: {neg}")
                pending_negations.remove(neg)

    head = ", ".join(str(t) for t in query.head_terms)
    lines.append(f"  project ({head})")
    return "\n".join(lines)


def _column_for(db: Database, atom: RelationalAtom, rendered: str) -> str:
    """The base-relation column an atom binds for a rendered term name."""
    columns = db.get(atom.predicate).columns
    for position, term in enumerate(atom.terms):
        if term_column(term) == rendered and position < len(columns):
            return columns[position]
    return rendered
