"""In-memory relations with set semantics and columnar storage.

The paper's language assumes "conventional set semantics rather than bag
semantics ... Some of our claims would not hold for bag semantics", so a
:class:`Relation` never contains duplicate rows — which is what makes the
subquery upper-bound property (Section 3.1) sound.

A relation is a named, column-labelled set of equal-width tuples.
Columns are strings; by convention the evaluator labels columns with the
rendered form of the Datalog term they bind (``"P"``, ``"$s"``), which
makes intermediate results self-describing.

Internally a relation keeps up to three representations of the same rows:

* a row set (``frozenset`` of tuples) — ideal for membership tests,
  set-algebra, and hashing;
* column arrays (one Python list per column, row-aligned) — ideal for
  batch-at-a-time operators that scan one or two columns of every row
  (hash joins, comparisons, grouping);
* encoded columns (one row-aligned list of integer codes per column,
  interned against a shared :class:`~.dictionary.ValueDictionary`) —
  the canonical data-plane layout: joins, grouping, and partitioning
  run on small ints, and the flat codes pack into ``array('q')``
  buffers for zero-copy shipping through shared memory.

Any representation is materialized lazily from the others and cached,
so operators pay only for the layout they touch.  All describe a
duplicate-free set of rows; ``distinct`` construction paths
(:meth:`Relation.from_columns`, :meth:`Relation.from_encoded`) let
operators that provably preserve distinctness — e.g. the natural join
of two duplicate-free inputs — skip re-deduplication entirely.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, Iterator, Sequence

from ..errors import SchemaError
from .dictionary import ValueDictionary

#: Width of one encoded cell in bytes (``array('q')`` signed 64-bit).
CODE_BYTES = 8


class Relation:
    """A named set of tuples over labelled columns.

    Neither representation is copied defensively on read access, but a
    relation is never mutated after construction; all operations return
    new relations.
    """

    __slots__ = (
        "name",
        "columns",
        "_column_index",
        "_rows",
        "_data",
        "_count",
        "_codes",
        "_dict",
    )

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        tuples: Iterable[tuple] = (),
    ) -> None:
        self.name = name
        self.columns: tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate column names in {name}: {self.columns}")
        width = len(self.columns)
        normalized: set[tuple] = set()
        for row in tuples:
            row_t = tuple(row)
            if len(row_t) != width:
                raise SchemaError(
                    f"tuple {row_t!r} has width {len(row_t)}, relation "
                    f"{name!r} expects {width}"
                )
            normalized.add(row_t)
        self._rows: frozenset[tuple] | None = frozenset(normalized)
        self._data: tuple[list, ...] | None = None
        self._codes: tuple[list[int], ...] | None = None
        self._dict: ValueDictionary | None = None
        self._count = len(normalized)
        self._column_index = {c: i for i, c in enumerate(self.columns)}

    # ------------------------------------------------------------------
    # Trusted constructors (no re-validation, no re-deduplication)
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Sequence[str],
        data: Sequence[list],
        count: int | None = None,
    ) -> "Relation":
        """Build a relation directly from row-aligned column arrays.

        The caller asserts the rows are already **distinct** — this is
        the fast path for operators (joins, selections) that provably
        preserve distinctness.  ``count`` is required only for
        zero-column relations, where no array records the row count.
        """
        rel = cls.__new__(cls)
        rel.name = name
        rel.columns = tuple(columns)
        if len(set(rel.columns)) != len(rel.columns):
            raise SchemaError(f"duplicate column names in {name}: {rel.columns}")
        arrays = tuple(data)
        if len(arrays) != len(rel.columns):
            raise SchemaError(
                f"relation {name!r} got {len(arrays)} column arrays for "
                f"{len(rel.columns)} columns"
            )
        if arrays:
            rel._count = len(arrays[0])
            for arr in arrays:
                if len(arr) != rel._count:
                    raise SchemaError(
                        f"relation {name!r} has ragged column arrays"
                    )
        else:
            rel._count = int(count or 0)
        rel._data = arrays
        rel._rows = None
        rel._codes = None
        rel._dict = None
        rel._column_index = {c: i for i, c in enumerate(rel.columns)}
        return rel

    @classmethod
    def from_encoded(
        cls,
        name: str,
        columns: Sequence[str],
        codes: Sequence[Sequence[int]],
        dictionary: ValueDictionary,
        count: int | None = None,
    ) -> "Relation":
        """Build a relation directly from dictionary-encoded code columns.

        The caller asserts the rows are already **distinct** and every
        code is valid in ``dictionary``.  ``codes`` columns may be lists,
        ``array('q')`` instances, or ``memoryview``s over shared memory;
        they are normalized to plain lists (the fastest layout for the
        pure-Python kernels) exactly once.  ``count`` is required only
        for zero-column relations.
        """
        rel = cls.__new__(cls)
        rel.name = name
        rel.columns = tuple(columns)
        if len(set(rel.columns)) != len(rel.columns):
            raise SchemaError(f"duplicate column names in {name}: {rel.columns}")
        if len(codes) != len(rel.columns):
            raise SchemaError(
                f"relation {name!r} got {len(codes)} code columns for "
                f"{len(rel.columns)} columns"
            )
        normalized = tuple(
            col if type(col) is list else list(col) for col in codes
        )
        if normalized:
            rel._count = len(normalized[0])
            for col in normalized:
                if len(col) != rel._count:
                    raise SchemaError(
                        f"relation {name!r} has ragged code columns"
                    )
        else:
            rel._count = int(count or 0)
        rel._codes = normalized
        rel._dict = dictionary
        rel._data = None
        rel._rows = None
        rel._column_index = {c: i for i, c in enumerate(rel.columns)}
        return rel

    @classmethod
    def from_distinct_rows(
        cls,
        name: str,
        columns: Sequence[str],
        rows: frozenset[tuple] | set[tuple],
    ) -> "Relation":
        """Build a relation from an already-deduplicated row set.

        The caller asserts every row has the right width; no per-row
        validation is performed.
        """
        rel = cls.__new__(cls)
        rel.name = name
        rel.columns = tuple(columns)
        if len(set(rel.columns)) != len(rel.columns):
            raise SchemaError(f"duplicate column names in {name}: {rel.columns}")
        rel._rows = rows if isinstance(rows, frozenset) else frozenset(rows)
        rel._data = None
        rel._codes = None
        rel._dict = None
        rel._count = len(rel._rows)
        rel._column_index = {c: i for i, c in enumerate(rel.columns)}
        return rel

    # ------------------------------------------------------------------
    # Representations
    # ------------------------------------------------------------------

    @property
    def tuples(self) -> frozenset[tuple]:
        """The rows as a frozenset, materialized lazily from columns."""
        if self._rows is None:
            if self._data is None and self._codes is not None:
                self.columns_data()
            data = self._data or ()
            if data:
                self._rows = frozenset(zip(*data))
            else:
                self._rows = frozenset([()] ) if self._count else frozenset()
        return self._rows

    def columns_data(self) -> tuple[list, ...]:
        """Row-aligned per-column arrays, materialized lazily from rows
        (or decoded lazily from encoded code columns)."""
        if self._data is None:
            if self._codes is not None and self._dict is not None:
                values = self._dict.values
                self._data = tuple(
                    list(map(values.__getitem__, col)) for col in self._codes
                )
                return self._data
            rows = self._rows or frozenset()
            if self.columns:
                if rows:
                    self._data = tuple(list(col) for col in zip(*rows))
                else:
                    self._data = tuple([] for _ in self.columns)
            else:
                self._data = ()
        return self._data

    # ------------------------------------------------------------------
    # Encoded representation
    # ------------------------------------------------------------------

    @property
    def is_encoded(self) -> bool:
        """Whether the encoded-column representation is materialized."""
        return self._codes is not None

    @property
    def dictionary(self) -> ValueDictionary | None:
        """The value dictionary the code columns are interned against."""
        return self._dict

    def code_columns(self) -> tuple[list[int], ...]:
        """The encoded code columns (shared, do not mutate).

        Raises :class:`SchemaError` if the relation is not encoded; use
        :meth:`encode_with` to encode against a dictionary first.
        """
        if self._codes is None:
            raise SchemaError(
                f"relation {self.name!r} has no encoded representation"
            )
        return self._codes

    def encode_with(self, dictionary: ValueDictionary) -> tuple[list[int], ...]:
        """Encode (and cache) the rows as code columns over ``dictionary``.

        Idempotent when already encoded against the same dictionary.
        Encoding against a *different* dictionary decodes first and does
        not replace the cached representation.
        """
        if self._codes is not None and self._dict is dictionary:
            return self._codes
        codes = tuple(
            dictionary.encode_column(col) for col in self.columns_data()
        )
        if self._codes is None:
            self._codes = codes
            self._dict = dictionary
        return codes

    def encoded_nbytes(self) -> int:
        """Size of the encoded columns as flat int64 buffers."""
        return CODE_BYTES * self._count * len(self.columns)

    def encoded_buffers(self) -> tuple[memoryview, ...]:
        """The code columns as read-only ``memoryview``s over ``array('q')``.

        This is the zero-copy transport form: each buffer can be written
        into a shared-memory segment (or sent over a pipe) byte-for-byte
        and reattached with ``memoryview.cast('q')`` on the other side.
        """
        return tuple(
            memoryview(array("q", col)).toreadonly()
            for col in self.code_columns()
        )

    def take(self, indexes: Sequence[int], name: str | None = None) -> "Relation":
        """The rows at ``indexes`` (caller asserts they stay distinct).

        Preserves the cheapest materialized representation: encoded
        relations gather code columns, others gather value columns.
        """
        if self._codes is not None and self._dict is not None:
            return Relation.from_encoded(
                name or self.name,
                self.columns,
                [list(map(col.__getitem__, indexes)) for col in self._codes],
                self._dict,
                count=len(indexes),
            )
        data = self.columns_data()
        return Relation.from_columns(
            name or self.name,
            self.columns,
            [list(map(arr.__getitem__, indexes)) for arr in data],
            count=len(indexes),
        )

    def column_array(self, column: str) -> list:
        """One column as a row-aligned array (shared, do not mutate)."""
        return self.columns_data()[self.column_position(column)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[tuple]:
        if self._rows is not None:
            return iter(self._rows)
        if self._data is None and self._codes is not None:
            self.columns_data()
        data = self._data or ()
        if data:
            return iter(zip(*data))
        return iter([()] * self._count)

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self.tuples

    def __eq__(self, other: object) -> bool:
        """Equality is by schema and contents; the name is a label only."""
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self.tuples == other.tuples

    def __hash__(self) -> int:
        return hash((self.columns, self.tuples))

    def column_position(self, column: str) -> int:
        """The 0-based index of ``column``; SchemaError if unknown."""
        try:
            return self._column_index[column]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no column {column!r}; "
                f"columns are {self.columns}"
            ) from None

    def column_values(self, column: str) -> set:
        """The set of distinct values in one column."""
        return set(self.column_array(column))

    def distinct_count(self, column: str) -> int:
        """Number of distinct values in one column."""
        return len(self.column_values(column))

    # ------------------------------------------------------------------
    # Core operations (set semantics; all return new relations)
    # ------------------------------------------------------------------

    def project(self, columns: Sequence[str], name: str | None = None) -> "Relation":
        """Projection with duplicate elimination.

        A projection that is a pure permutation of all columns cannot
        create duplicates and skips the dedup pass.
        """
        positions = [self.column_position(c) for c in columns]
        if len(set(positions)) == len(self.columns):
            if self._codes is not None and self._dict is not None:
                return Relation.from_encoded(
                    name or self.name,
                    tuple(columns),
                    [self._codes[p] for p in positions],
                    self._dict,
                    count=self._count,
                )
            data = self.columns_data()
            return Relation.from_columns(
                name or self.name,
                tuple(columns),
                [data[p] for p in positions],
                count=self._count,
            )
        if len(positions) == 1:
            rows = {(v,) for v in self.columns_data()[positions[0]]}
        else:
            rows = {tuple(row[p] for p in positions) for row in self.tuples}
        return Relation.from_distinct_rows(name or self.name, tuple(columns), rows)

    def select(
        self, predicate: Callable[[dict], bool], name: str | None = None
    ) -> "Relation":
        """Selection by an arbitrary row predicate.

        The predicate receives each row as a ``{column: value}`` dict.
        """
        cols = self.columns
        rows = frozenset(
            row
            for row in self.tuples
            if predicate(dict(zip(cols, row)))
        )
        return Relation.from_distinct_rows(name or self.name, cols, rows)

    def select_eq(self, column: str, value: object, name: str | None = None) -> "Relation":
        """Fast-path selection ``column = value``.

        On an encoded relation the comparison runs over integer codes:
        a constant that was never interned matches nothing.
        """
        pos = self.column_position(column)
        if self._codes is not None and self._dict is not None:
            code = self._dict.code_of(value)
            if code is None:
                keep: list[int] = []
            else:
                keep = [
                    i for i, c in enumerate(self._codes[pos]) if c == code
                ]
            return self.take(keep, name=name)
        data = self.columns_data()
        keep = [i for i, v in enumerate(data[pos]) if v == value]
        return Relation.from_columns(
            name or self.name,
            self.columns,
            [[arr[i] for i in keep] for arr in data],
        )

    def rename(self, mapping: dict[str, str], name: str | None = None) -> "Relation":
        """Rename columns; unmentioned columns keep their names."""
        new_cols = tuple(mapping.get(c, c) for c in self.columns)
        return self._relabelled(new_cols, name or self.name)

    def with_name(self, name: str) -> "Relation":
        """A copy of this relation under a different name."""
        return self._relabelled(self.columns, name)

    def _relabelled(self, new_cols: tuple[str, ...], name: str) -> "Relation":
        """Share both representations under new labels (rows unchanged)."""
        if len(set(new_cols)) != len(new_cols):
            raise SchemaError(f"duplicate column names in {name}: {new_cols}")
        rel = Relation.__new__(Relation)
        rel.name = name
        rel.columns = new_cols
        rel._rows = self._rows
        rel._data = self._data
        rel._codes = self._codes
        rel._dict = self._dict
        rel._count = self._count
        rel._column_index = {c: i for i, c in enumerate(new_cols)}
        return rel

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set union with a same-schema relation."""
        self._require_same_schema(other, "union")
        return Relation.from_distinct_rows(
            name or self.name, self.columns, self.tuples | other.tuples
        )

    def difference(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set difference with a same-schema relation."""
        self._require_same_schema(other, "difference")
        return Relation.from_distinct_rows(
            name or self.name, self.columns, self.tuples - other.tuples
        )

    def intersection(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set intersection with a same-schema relation."""
        self._require_same_schema(other, "intersection")
        return Relation.from_distinct_rows(
            name or self.name, self.columns, self.tuples & other.tuples
        )

    def _require_same_schema(self, other: "Relation", op: str) -> None:
        if self.columns != other.columns:
            raise SchemaError(
                f"{op} requires identical columns: "
                f"{self.columns} vs {other.columns}"
            )

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------

    def __reduce__(self) -> tuple:
        """Pickle as decoded column arrays via a positional rebuilder.

        ``__slots__`` + trusted keyword-only constructor paths do not
        round-trip through the default reduce protocol, and pickling an
        encoded relation naively would drag the entire shared
        :class:`ValueDictionary` into every payload.  Instead the wire
        form is always (name, columns, value arrays, count): compact,
        self-contained, and rebuilt through the distinct-preserving
        fast path on the other side.
        """
        return (
            _rebuild_relation,
            (self.name, self.columns, self.columns_data(), self._count),
        )

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, columns={self.columns}, "
            f"rows={len(self)})"
        )

    def pretty(self, limit: int = 20) -> str:
        """A small fixed-width text rendering, for examples and debugging."""
        header = " | ".join(self.columns) if self.columns else "(no columns)"
        lines = [f"{self.name} ({len(self)} rows)", header, "-" * len(header)]
        for i, row in enumerate(sorted(self.tuples, key=repr)):
            if i >= limit:
                lines.append(f"... and {len(self) - limit} more")
                break
            lines.append(" | ".join(str(v) for v in row))
        return "\n".join(lines)


def _rebuild_relation(
    name: str,
    columns: tuple[str, ...],
    data: tuple[list, ...],
    count: int,
) -> Relation:
    """Unpickle target: rebuild from distinct row-aligned columns."""
    return Relation.from_columns(name, columns, data, count=count)


def relation_from_rows(
    name: str, columns: Sequence[str], rows: Iterable[Sequence]
) -> Relation:
    """Build a relation from any iterable of row sequences."""
    return Relation(name, columns, (tuple(r) for r in rows))
