"""In-memory relations with set semantics and columnar storage.

The paper's language assumes "conventional set semantics rather than bag
semantics ... Some of our claims would not hold for bag semantics", so a
:class:`Relation` never contains duplicate rows — which is what makes the
subquery upper-bound property (Section 3.1) sound.

A relation is a named, column-labelled set of equal-width tuples.
Columns are strings; by convention the evaluator labels columns with the
rendered form of the Datalog term they bind (``"P"``, ``"$s"``), which
makes intermediate results self-describing.

Internally a relation keeps up to two representations of the same rows:

* a row set (``frozenset`` of tuples) — ideal for membership tests,
  set-algebra, and hashing;
* column arrays (one Python list per column, row-aligned) — ideal for
  batch-at-a-time operators that scan one or two columns of every row
  (hash joins, comparisons, grouping).

Either representation is materialized lazily from the other and cached,
so operators pay only for the layout they touch.  Both describe a
duplicate-free set of rows; ``distinct`` construction paths
(:meth:`Relation.from_columns`) let operators that provably preserve
distinctness — e.g. the natural join of two duplicate-free inputs —
skip re-deduplication entirely.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from ..errors import SchemaError


class Relation:
    """A named set of tuples over labelled columns.

    Neither representation is copied defensively on read access, but a
    relation is never mutated after construction; all operations return
    new relations.
    """

    __slots__ = ("name", "columns", "_column_index", "_rows", "_data", "_count")

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        tuples: Iterable[tuple] = (),
    ):
        self.name = name
        self.columns: tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate column names in {name}: {self.columns}")
        width = len(self.columns)
        normalized: set[tuple] = set()
        for row in tuples:
            row_t = tuple(row)
            if len(row_t) != width:
                raise SchemaError(
                    f"tuple {row_t!r} has width {len(row_t)}, relation "
                    f"{name!r} expects {width}"
                )
            normalized.add(row_t)
        self._rows: frozenset[tuple] | None = frozenset(normalized)
        self._data: tuple[list, ...] | None = None
        self._count = len(normalized)
        self._column_index = {c: i for i, c in enumerate(self.columns)}

    # ------------------------------------------------------------------
    # Trusted constructors (no re-validation, no re-deduplication)
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Sequence[str],
        data: Sequence[list],
        count: int | None = None,
    ) -> "Relation":
        """Build a relation directly from row-aligned column arrays.

        The caller asserts the rows are already **distinct** — this is
        the fast path for operators (joins, selections) that provably
        preserve distinctness.  ``count`` is required only for
        zero-column relations, where no array records the row count.
        """
        rel = cls.__new__(cls)
        rel.name = name
        rel.columns = tuple(columns)
        if len(set(rel.columns)) != len(rel.columns):
            raise SchemaError(f"duplicate column names in {name}: {rel.columns}")
        arrays = tuple(data)
        if len(arrays) != len(rel.columns):
            raise SchemaError(
                f"relation {name!r} got {len(arrays)} column arrays for "
                f"{len(rel.columns)} columns"
            )
        if arrays:
            rel._count = len(arrays[0])
            for arr in arrays:
                if len(arr) != rel._count:
                    raise SchemaError(
                        f"relation {name!r} has ragged column arrays"
                    )
        else:
            rel._count = int(count or 0)
        rel._data = arrays
        rel._rows = None
        rel._column_index = {c: i for i, c in enumerate(rel.columns)}
        return rel

    @classmethod
    def from_distinct_rows(
        cls,
        name: str,
        columns: Sequence[str],
        rows: frozenset[tuple] | set[tuple],
    ) -> "Relation":
        """Build a relation from an already-deduplicated row set.

        The caller asserts every row has the right width; no per-row
        validation is performed.
        """
        rel = cls.__new__(cls)
        rel.name = name
        rel.columns = tuple(columns)
        if len(set(rel.columns)) != len(rel.columns):
            raise SchemaError(f"duplicate column names in {name}: {rel.columns}")
        rel._rows = rows if isinstance(rows, frozenset) else frozenset(rows)
        rel._data = None
        rel._count = len(rel._rows)
        rel._column_index = {c: i for i, c in enumerate(rel.columns)}
        return rel

    # ------------------------------------------------------------------
    # Representations
    # ------------------------------------------------------------------

    @property
    def tuples(self) -> frozenset[tuple]:
        """The rows as a frozenset, materialized lazily from columns."""
        if self._rows is None:
            data = self._data or ()
            if data:
                self._rows = frozenset(zip(*data))
            else:
                self._rows = frozenset([()] ) if self._count else frozenset()
        return self._rows

    def columns_data(self) -> tuple[list, ...]:
        """Row-aligned per-column arrays, materialized lazily from rows."""
        if self._data is None:
            rows = self._rows or frozenset()
            if self.columns:
                if rows:
                    self._data = tuple(list(col) for col in zip(*rows))
                else:
                    self._data = tuple([] for _ in self.columns)
            else:
                self._data = ()
        return self._data

    def column_array(self, column: str) -> list:
        """One column as a row-aligned array (shared, do not mutate)."""
        return self.columns_data()[self.column_position(column)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[tuple]:
        if self._rows is not None:
            return iter(self._rows)
        data = self._data or ()
        if data:
            return iter(zip(*data))
        return iter([()] * self._count)

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self.tuples

    def __eq__(self, other: object) -> bool:
        """Equality is by schema and contents; the name is a label only."""
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self.tuples == other.tuples

    def __hash__(self) -> int:
        return hash((self.columns, self.tuples))

    def column_position(self, column: str) -> int:
        """The 0-based index of ``column``; SchemaError if unknown."""
        try:
            return self._column_index[column]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no column {column!r}; "
                f"columns are {self.columns}"
            ) from None

    def column_values(self, column: str) -> set:
        """The set of distinct values in one column."""
        return set(self.column_array(column))

    def distinct_count(self, column: str) -> int:
        """Number of distinct values in one column."""
        return len(self.column_values(column))

    # ------------------------------------------------------------------
    # Core operations (set semantics; all return new relations)
    # ------------------------------------------------------------------

    def project(self, columns: Sequence[str], name: str | None = None) -> "Relation":
        """Projection with duplicate elimination.

        A projection that is a pure permutation of all columns cannot
        create duplicates and skips the dedup pass.
        """
        positions = [self.column_position(c) for c in columns]
        if len(set(positions)) == len(self.columns):
            data = self.columns_data()
            return Relation.from_columns(
                name or self.name,
                tuple(columns),
                [data[p] for p in positions],
                count=self._count,
            )
        if len(positions) == 1:
            rows = {(v,) for v in self.columns_data()[positions[0]]}
        else:
            rows = {tuple(row[p] for p in positions) for row in self.tuples}
        return Relation.from_distinct_rows(name or self.name, tuple(columns), rows)

    def select(
        self, predicate: Callable[[dict], bool], name: str | None = None
    ) -> "Relation":
        """Selection by an arbitrary row predicate.

        The predicate receives each row as a ``{column: value}`` dict.
        """
        cols = self.columns
        rows = frozenset(
            row
            for row in self.tuples
            if predicate(dict(zip(cols, row)))
        )
        return Relation.from_distinct_rows(name or self.name, cols, rows)

    def select_eq(self, column: str, value: object, name: str | None = None) -> "Relation":
        """Fast-path selection ``column = value``."""
        pos = self.column_position(column)
        data = self.columns_data()
        keep = [i for i, v in enumerate(data[pos]) if v == value]
        return Relation.from_columns(
            name or self.name,
            self.columns,
            [[arr[i] for i in keep] for arr in data],
        )

    def rename(self, mapping: dict[str, str], name: str | None = None) -> "Relation":
        """Rename columns; unmentioned columns keep their names."""
        new_cols = tuple(mapping.get(c, c) for c in self.columns)
        return self._relabelled(new_cols, name or self.name)

    def with_name(self, name: str) -> "Relation":
        """A copy of this relation under a different name."""
        return self._relabelled(self.columns, name)

    def _relabelled(self, new_cols: tuple[str, ...], name: str) -> "Relation":
        """Share both representations under new labels (rows unchanged)."""
        if len(set(new_cols)) != len(new_cols):
            raise SchemaError(f"duplicate column names in {name}: {new_cols}")
        rel = Relation.__new__(Relation)
        rel.name = name
        rel.columns = new_cols
        rel._rows = self._rows
        rel._data = self._data
        rel._count = self._count
        rel._column_index = {c: i for i, c in enumerate(new_cols)}
        return rel

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set union with a same-schema relation."""
        self._require_same_schema(other, "union")
        return Relation.from_distinct_rows(
            name or self.name, self.columns, self.tuples | other.tuples
        )

    def difference(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set difference with a same-schema relation."""
        self._require_same_schema(other, "difference")
        return Relation.from_distinct_rows(
            name or self.name, self.columns, self.tuples - other.tuples
        )

    def intersection(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set intersection with a same-schema relation."""
        self._require_same_schema(other, "intersection")
        return Relation.from_distinct_rows(
            name or self.name, self.columns, self.tuples & other.tuples
        )

    def _require_same_schema(self, other: "Relation", op: str) -> None:
        if self.columns != other.columns:
            raise SchemaError(
                f"{op} requires identical columns: "
                f"{self.columns} vs {other.columns}"
            )

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, columns={self.columns}, "
            f"rows={len(self)})"
        )

    def pretty(self, limit: int = 20) -> str:
        """A small fixed-width text rendering, for examples and debugging."""
        header = " | ".join(self.columns) if self.columns else "(no columns)"
        lines = [f"{self.name} ({len(self)} rows)", header, "-" * len(header)]
        for i, row in enumerate(sorted(self.tuples, key=repr)):
            if i >= limit:
                lines.append(f"... and {len(self) - limit} more")
                break
            lines.append(" | ".join(str(v) for v in row))
        return "\n".join(lines)


def relation_from_rows(
    name: str, columns: Sequence[str], rows: Iterable[Sequence]
) -> Relation:
    """Build a relation from any iterable of row sequences."""
    return Relation(name, columns, (tuple(r) for r in rows))
