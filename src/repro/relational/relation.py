"""In-memory relations with set semantics.

The paper's language assumes "conventional set semantics rather than bag
semantics ... Some of our claims would not hold for bag semantics", so a
:class:`Relation` stores its tuples in a Python ``set`` — duplicates are
impossible by construction, which is what makes the subquery upper-bound
property (Section 3.1) sound.

A relation is a named, column-labelled set of equal-width tuples.
Columns are strings; by convention the evaluator labels columns with the
rendered form of the Datalog term they bind (``"P"``, ``"$s"``), which
makes intermediate results self-describing.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from ..errors import SchemaError


class Relation:
    """A named set of tuples over labelled columns.

    The tuple set is stored as-is (not copied defensively on read access)
    but never mutated after construction; all operations return new
    relations.
    """

    __slots__ = ("name", "columns", "tuples", "_column_index")

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        tuples: Iterable[tuple] = (),
    ):
        self.name = name
        self.columns: tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate column names in {name}: {self.columns}")
        width = len(self.columns)
        normalized: set[tuple] = set()
        for row in tuples:
            row_t = tuple(row)
            if len(row_t) != width:
                raise SchemaError(
                    f"tuple {row_t!r} has width {len(row_t)}, relation "
                    f"{name!r} expects {width}"
                )
            normalized.add(row_t)
        self.tuples: frozenset[tuple] = frozenset(normalized)
        self._column_index = {c: i for i, c in enumerate(self.columns)}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.tuples)

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self.tuples

    def __eq__(self, other: object) -> bool:
        """Equality is by schema and contents; the name is a label only."""
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self.tuples == other.tuples

    def __hash__(self) -> int:
        return hash((self.columns, self.tuples))

    def column_position(self, column: str) -> int:
        """The 0-based index of ``column``; SchemaError if unknown."""
        try:
            return self._column_index[column]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no column {column!r}; "
                f"columns are {self.columns}"
            ) from None

    def column_values(self, column: str) -> set:
        """The set of distinct values in one column."""
        pos = self.column_position(column)
        return {row[pos] for row in self.tuples}

    def distinct_count(self, column: str) -> int:
        """Number of distinct values in one column."""
        return len(self.column_values(column))

    # ------------------------------------------------------------------
    # Core operations (set semantics; all return new relations)
    # ------------------------------------------------------------------

    def project(self, columns: Sequence[str], name: str | None = None) -> "Relation":
        """Projection with duplicate elimination."""
        positions = [self.column_position(c) for c in columns]
        rows = {tuple(row[p] for p in positions) for row in self.tuples}
        return Relation(name or self.name, tuple(columns), rows)

    def select(
        self, predicate: Callable[[dict], bool], name: str | None = None
    ) -> "Relation":
        """Selection by an arbitrary row predicate.

        The predicate receives each row as a ``{column: value}`` dict.
        """
        cols = self.columns
        rows = {
            row
            for row in self.tuples
            if predicate(dict(zip(cols, row)))
        }
        return Relation(name or self.name, cols, rows)

    def select_eq(self, column: str, value: object, name: str | None = None) -> "Relation":
        """Fast-path selection ``column = value``."""
        pos = self.column_position(column)
        rows = {row for row in self.tuples if row[pos] == value}
        return Relation(name or self.name, self.columns, rows)

    def rename(self, mapping: dict[str, str], name: str | None = None) -> "Relation":
        """Rename columns; unmentioned columns keep their names."""
        new_cols = tuple(mapping.get(c, c) for c in self.columns)
        return Relation(name or self.name, new_cols, self.tuples)

    def with_name(self, name: str) -> "Relation":
        """A copy of this relation under a different name."""
        return Relation(name, self.columns, self.tuples)

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set union with a same-schema relation."""
        self._require_same_schema(other, "union")
        return Relation(
            name or self.name, self.columns, self.tuples | other.tuples
        )

    def difference(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set difference with a same-schema relation."""
        self._require_same_schema(other, "difference")
        return Relation(
            name or self.name, self.columns, self.tuples - other.tuples
        )

    def intersection(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set intersection with a same-schema relation."""
        self._require_same_schema(other, "intersection")
        return Relation(
            name or self.name, self.columns, self.tuples & other.tuples
        )

    def _require_same_schema(self, other: "Relation", op: str) -> None:
        if self.columns != other.columns:
            raise SchemaError(
                f"{op} requires identical columns: "
                f"{self.columns} vs {other.columns}"
            )

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, columns={self.columns}, "
            f"rows={len(self.tuples)})"
        )

    def pretty(self, limit: int = 20) -> str:
        """A small fixed-width text rendering, for examples and debugging."""
        header = " | ".join(self.columns) if self.columns else "(no columns)"
        lines = [f"{self.name} ({len(self)} rows)", header, "-" * len(header)]
        for i, row in enumerate(sorted(self.tuples, key=repr)):
            if i >= limit:
                lines.append(f"... and {len(self) - limit} more")
                break
            lines.append(" | ".join(str(v) for v in row))
        return "\n".join(lines)


def relation_from_rows(
    name: str, columns: Sequence[str], rows: Iterable[Sequence]
) -> Relation:
    """Build a relation from any iterable of row sequences."""
    return Relation(name, columns, (tuple(r) for r in rows))
