"""Relation statistics for cost-based plan decisions.

Section 4 decides whether a FILTER step pays off from two kinds of
numbers: relation cardinalities and "the number of tuples per assignment
of values to the parameters" (Section 4.4).  :class:`RelationStats`
caches the per-relation numbers; :func:`tuples_per_assignment` computes
the Section 4.4 ratio for an intermediate relation and a parameter
column set; and :func:`estimate_join_size` is the textbook
(Selinger-style, [G*79]) independence estimate used by the static
optimizer's cost model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from .relation import CODE_BYTES, Relation


@dataclass(frozen=True)
class RelationStats:
    """Cardinality, per-column distinct counts, and the encoded row
    width (bytes per row in the dictionary-encoded flat layout) for one
    relation.  The width feeds byte-based cost decisions — e.g. whether
    a partitioned step is big enough to amortize process workers.

    ``max_freq`` records, per column, the largest number of tuples that
    share one value — the *guaranteed* (not average) join fan-out that
    the pessimistic (UES) join ordering bounds with.  It is exact when
    the stats were computed from a relation (:meth:`of`); hand-built
    stats without it fall back to the cardinality, which is always a
    sound upper bound.
    """

    name: str
    cardinality: int
    distinct: dict[str, int]
    row_bytes: int = 0
    max_freq: dict[str, int] = field(default_factory=dict)

    @classmethod
    def of(cls, relation: Relation) -> "RelationStats":
        # One Counter pass per column yields both the distinct count
        # (its length) and the maximum per-value frequency.  Codes and
        # values are bijective, so counting codes is equivalent and
        # skips decoding.
        arrays = (
            relation.code_columns()
            if relation.is_encoded
            else relation.columns_data()
        )
        distinct: dict[str, int] = {}
        max_freq: dict[str, int] = {}
        for position, column in enumerate(relation.columns):
            counts = Counter(arrays[position])
            distinct[column] = len(counts)
            max_freq[column] = max(counts.values(), default=0)
        return cls(
            relation.name,
            len(relation),
            distinct,
            row_bytes=CODE_BYTES * relation.arity,
            max_freq=max_freq,
        )

    def distinct_count(self, column: str) -> int:
        return self.distinct.get(column, 0)

    def max_frequency(self, column: str) -> int:
        """The largest number of tuples sharing one value of ``column``.
        Sound fallback for stats built without frequency data: every
        value occurs at most ``cardinality`` times."""
        recorded = self.max_freq.get(column)
        if recorded is None:
            return self.cardinality
        return recorded

    def encoded_bytes(self) -> int:
        """Flat-buffer size of the whole relation when encoded."""
        return self.cardinality * self.row_bytes

    def tuples_per_value(self, column: str) -> float:
        """Average number of tuples sharing one value of ``column`` —
        e.g. average patients per symptom in ``exhibits``.  Zero for an
        empty relation."""
        d = self.distinct_count(column)
        if d == 0:
            return 0.0
        return self.cardinality / d


def tuples_per_assignment(
    relation: Relation, parameter_columns: Sequence[str]
) -> float:
    """The Section 4.4 ratio: average tuples per distinct assignment of
    the parameter columns.

    "we should ask whether the number of tuples per value-assignment for
    the parameters is low or high compared with the support threshold."
    Low (below the threshold) means many assignments are prunable and a
    FILTER step is likely worthwhile.
    """
    if not parameter_columns:
        return float(len(relation))
    assignments = len(relation.project(parameter_columns))
    if assignments == 0:
        return 0.0
    return len(relation) / assignments


def estimate_join_size(
    left: RelationStats,
    right: RelationStats,
    join_columns: Sequence[str],
) -> float:
    """Independence estimate for |left ⋈ right| on ``join_columns``.

    The standard System-R formula: the product of cardinalities divided
    by the maximum distinct count of each join column.  With no join
    columns this is the cartesian-product size.
    """
    size = float(left.cardinality) * float(right.cardinality)
    for column in join_columns:
        d = max(left.distinct_count(column), right.distinct_count(column), 1)
        size /= d
    return size


def estimate_chain_join_size(
    stats: Sequence[RelationStats],
    column_sets: Sequence[Sequence[str]],
) -> float:
    """Estimate a left-deep chain of joins: ``stats[0] ⋈ stats[1] ⋈ ...``
    where ``column_sets[i]`` are the columns shared between the running
    prefix and ``stats[i+1]``.  Used by the optimizer to price the final
    step of a plan without executing it."""
    if not stats:
        return 0.0
    size = float(stats[0].cardinality)
    for i, right in enumerate(stats[1:]):
        size *= float(right.cardinality)
        for column in column_sets[i]:
            # Distinct count in the running prefix is unknown; bound it
            # by the base relation's distinct count (independence).
            d = max(right.distinct_count(column), 1)
            size /= d
    return size


def selectivity_of_filter(
    relation: Relation,
    parameter_columns: Sequence[str],
    surviving_assignments: int,
) -> float:
    """Fraction of parameter assignments that survive a filter —
    the observed pruning power used in the dynamic strategy's reporting."""
    total = len(relation.project(parameter_columns)) if parameter_columns else 1
    if total == 0:
        return 0.0
    return surviving_assignments / total
