"""Grouped aggregation — the machinery behind flock filters.

A flock filter is a condition on the *query result per parameter
assignment* (``COUNT(answer.P) >= 20``).  Operationally that is a
GROUP BY over the parameter columns with an aggregate over the answer
columns, exactly the SQL ``HAVING`` pattern of the paper's Fig. 1.

:func:`group_aggregate` computes one aggregate per group;
:func:`grouped_counts` is the common COUNT special case.  When the
group-by column list is empty the whole relation is one group (a flock
with no parameters degenerates to a single yes/no test).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from enum import Enum
from typing import Callable, Sequence

from ..errors import FilterError
from .relation import Relation


class AggregateFunction(Enum):
    """Aggregates admitted in filter conditions (Section 2.1, Section 5)."""

    COUNT = "COUNT"
    SUM = "SUM"
    MIN = "MIN"
    MAX = "MAX"

    @classmethod
    def from_name(cls, name: str) -> "AggregateFunction":
        try:
            return cls[name.upper()]
        except KeyError:
            raise FilterError(f"unknown aggregate function {name!r}") from None


def group_aggregate(
    relation: Relation,
    group_by: Sequence[str],
    fn: AggregateFunction,
    target: Sequence[str] | None = None,
    name: str = "agg",
    result_column: str = "agg",
) -> Relation:
    """GROUP BY ``group_by``, aggregate ``fn`` over the ``target`` columns.

    The members of each group are the **distinct non-group sub-tuples**
    (set semantics: the query result has no duplicate rows, so a group's
    members are exactly its distinct answer tuples).

    * For COUNT, ``target`` defaults to all non-group columns; the count
      is of distinct target sub-tuples within the group.
    * For SUM/MIN/MAX, ``target`` must be exactly one column; the
      aggregate ranges over that column's value **in each distinct
      member tuple** — so in Fig. 10's weighted baskets, two distinct
      baskets with equal weight both contribute to ``SUM(answer.W)``.

    Returns a relation with columns ``group_by + (result_column,)``.
    With an empty ``group_by`` the whole relation is one group; COUNT of
    an empty input yields a single row with value 0 (SQL's scalar
    aggregate), while other aggregates of an empty input yield no rows.
    """
    group_positions = [relation.column_position(c) for c in group_by]
    group_set = set(group_by)
    member_columns = [c for c in relation.columns if c not in group_set]
    if target is None:
        if fn is not AggregateFunction.COUNT:
            raise FilterError(f"{fn.value} requires an explicit target column")
        target = member_columns
    if fn is not AggregateFunction.COUNT and len(target) != 1:
        raise FilterError(
            f"{fn.value} aggregates exactly one column, got {list(target)}"
        )
    missing = [c for c in target if c not in set(member_columns)]
    if missing:
        raise FilterError(
            f"aggregate target columns {missing} are group-by columns or "
            "absent; targets must be non-group columns"
        )

    # All paths aggregate over the column arrays rather than the row
    # set: keys come from zipping only the group columns, so no full-row
    # tuples are materialized.  With one group column the scalar values
    # themselves serve as keys.  On an encoded relation the key columns
    # are the integer *code* columns — grouping hashes small ints and the
    # group-key side of the output stays encoded (codes are
    # equality-faithful, so code groups are exactly value groups).
    dictionary = relation.dictionary if relation.is_encoded else None
    columns: Sequence[Sequence] = (
        relation.code_columns() if dictionary is not None
        else relation.columns_data()
    )
    single_key = len(group_positions) == 1
    if single_key:
        keys: Sequence = columns[group_positions[0]]
    elif group_positions:
        keys = list(zip(*(columns[p] for p in group_positions)))
    else:
        keys = [()] * len(relation)  # whole relation is one group

    def target_values(position: int) -> Sequence:
        # SUM/MIN/MAX need real values (codes are not order- or
        # arithmetic-faithful); decode only the one target column.
        if dictionary is not None:
            return dictionary.decode_column(columns[position])
        return columns[position]

    # Fast paths.  Set semantics guarantees rows are distinct, hence the
    # member sub-tuples *within a group* are distinct too (key + member
    # = the whole row).  So:
    #   * COUNT over all member columns = plain row count per group;
    #   * SUM/MIN/MAX over one column can stream row values directly.
    per_group: dict
    if fn is AggregateFunction.COUNT and set(target) == set(member_columns):
        per_group = Counter(keys)
    elif fn is not AggregateFunction.COUNT:
        values = target_values(relation.column_position(target[0]))
        if fn is AggregateFunction.SUM:
            per_group = defaultdict(int)
            for key, value in zip(keys, values):
                per_group[key] += value
        else:
            pick = min if fn is AggregateFunction.MIN else max
            per_group = {}
            for key, value in zip(keys, values):
                current = per_group.get(key)
                per_group[key] = (
                    value if current is None else pick(current, value)
                )
    else:
        # COUNT over a strict subset of the member columns: distinct
        # target sub-tuples must be materialized per group.
        target_positions = [relation.column_position(c) for c in target]
        if len(target_positions) == 1:
            members_iter: Sequence = columns[target_positions[0]]
        else:
            members_iter = list(zip(*(columns[p] for p in target_positions)))
        groups: dict = defaultdict(set)
        for key, member in zip(keys, members_iter):
            groups[key].add(member)
        per_group = {key: len(members) for key, members in groups.items()}

    if not group_by and not per_group and fn is AggregateFunction.COUNT:
        per_group = {(): 0}

    # Group keys are unique by construction, so the output is distinct
    # and can be built columnar with no re-deduplication pass.
    out_columns = tuple(group_by) + (result_column,)
    if single_key:
        key_columns = [list(per_group.keys())]
    elif group_positions and per_group:
        key_columns = [list(col) for col in zip(*per_group.keys())]
    else:
        key_columns = [[] for _ in group_positions]
    aggregate_column = list(per_group.values())
    if dictionary is not None:
        return Relation.from_encoded(
            name,
            out_columns,
            key_columns + [dictionary.encode_column(aggregate_column)],
            dictionary,
            count=len(aggregate_column),
        )
    return Relation.from_columns(
        name,
        out_columns,
        key_columns + [aggregate_column],
        count=len(aggregate_column),
    )


def grouped_counts(
    relation: Relation,
    group_by: Sequence[str],
    name: str = "counts",
    result_column: str = "count",
) -> Relation:
    """COUNT of distinct non-group sub-tuples per group."""
    return group_aggregate(
        relation,
        group_by,
        AggregateFunction.COUNT,
        name=name,
        result_column=result_column,
    )


def having(
    counts: Relation,
    predicate: Callable[[object], bool],
    result_column: str = "count",
    name: str = "having",
    keep_aggregate: bool = False,
) -> Relation:
    """Filter a grouped-aggregate relation by its aggregate value —
    the HAVING clause.  Drops the aggregate column unless asked to keep it.
    """
    pos = counts.column_position(result_column)
    rows = {row for row in counts.tuples if predicate(row[pos])}
    if keep_aggregate:
        return Relation(name, counts.columns, rows)
    keep = [c for c in counts.columns if c != result_column]
    keep_pos = [counts.column_position(c) for c in keep]
    return Relation(name, tuple(keep), {tuple(r[p] for p in keep_pos) for r in rows})
