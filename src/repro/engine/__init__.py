"""Backend-agnostic physical plan IR and its interpreters.

The paper's contribution is a *plan* notation — ``R(P) := FILTER(P, Q,
C)`` (Section 4.1) — and this package is where those logical plans
become physical ones, exactly once.  :mod:`repro.engine.planner` lowers
a logical rule / filter step into a small DAG of physical operators
(:mod:`repro.engine.ir`); :mod:`repro.engine.memory` interprets that DAG
over columnar in-memory relations, and :mod:`repro.engine.sqlgen`
renders the same DAG to SQLite SQL.  Every strategy (naive, optimized,
stats, dynamic) and both backends execute through this IR, so the plan
we can print (:meth:`~repro.engine.ir.PhysicalPlan.render`) is by
construction the plan we run.

Parallel execution rides the same IR: :mod:`repro.engine.partition`
wraps a step plan in :class:`~repro.engine.ir.Partition` /
:class:`~repro.engine.ir.Merge` operators, and
:mod:`repro.engine.parallel` fans the partitions out on a worker pool —
bit-identical to serial execution for any worker count.
"""

from .ir import (
    AggregateSpec,
    AntiJoin,
    CompareFilter,
    GroupAggregate,
    HashJoin,
    JoinStage,
    Materialize,
    Merge,
    Partition,
    PartitionedStepPlan,
    PhysicalPlan,
    Scan,
    StepPlan,
    ThresholdFilter,
    UnionOp,
)
from .memory import MemoryEngine, StepResult
from .parallel import ParallelExecutor, ParallelStepResult, resolve_jobs
from .partition import (
    choose_partition_column,
    partition_step,
    stable_hash,
    step_cost_estimate,
)
from .planner import lower_rule, lower_step, order_positive_atoms

__all__ = [
    "AggregateSpec",
    "AntiJoin",
    "CompareFilter",
    "GroupAggregate",
    "HashJoin",
    "JoinStage",
    "Materialize",
    "MemoryEngine",
    "Merge",
    "ParallelExecutor",
    "ParallelStepResult",
    "Partition",
    "PartitionedStepPlan",
    "PhysicalPlan",
    "Scan",
    "StepPlan",
    "StepResult",
    "ThresholdFilter",
    "UnionOp",
    "choose_partition_column",
    "lower_rule",
    "lower_step",
    "order_positive_atoms",
    "partition_step",
    "resolve_jobs",
    "stable_hash",
    "step_cost_estimate",
]
