"""SQL rendering of physical step plans — the SQLite backend's interpreter.

The same :class:`~repro.engine.ir.StepPlan` the in-memory engine
executes is rendered here as one SQL statement: each rule branch becomes
a ``SELECT DISTINCT`` whose ``FROM`` clause lists the scans *in the
plan's join-stage order*, comparisons and constant/repeated-term checks
become ``WHERE`` conjuncts, anti-joins become ``NOT EXISTS``, the union
operator becomes ``UNION``, and the group-aggregate/threshold pair
becomes ``GROUP BY``/``HAVING``.  Neither ordering nor filter placement
is re-derived: the planner decided both, once, for every backend.

Column naming: answer columns ``$p`` and ``_h{i}`` are not valid bare
SQL identifiers, so they are mapped to ``p_{p}`` and ``a_{i}``; anything
else (aggregate columns like ``_agg0``) passes through unchanged.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..datalog.terms import Constant, Term
from ..errors import PlanError
from ..relational.aggregates import AggregateFunction
from ..relational.binding import term_column
from .ir import AntiJoin, CompareFilter, PhysicalPlan, StepPlan

#: Resolves a predicate to its table's column names.
ColumnSource = Callable[[str, int], Sequence[str]]


def sql_literal(value: object) -> str:
    """Render one constant as a SQL literal."""
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return str(value)


def safe_column(column: str) -> str:
    """A bare-identifier-safe name for an answer column."""
    if column.startswith("$"):
        return f"p_{column[1:]}"
    if column.startswith("_h"):
        return f"a_{column[2:]}"
    return column


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


class _BranchRenderer:
    """Renders one rule's :class:`PhysicalPlan` as a SELECT statement."""

    def __init__(self, plan: PhysicalPlan, columns_of: ColumnSource):
        self.plan = plan
        self.columns_of = columns_of
        self.aliases: list[tuple[str, str]] = []  # (alias, table)
        self.bindings: dict[Term, str] = {}  # term -> first alias.column
        self.where: list[str] = []
        self._build()

    def _build(self) -> None:
        for i, stage in enumerate(self.plan.stages):
            atom = stage.scan.atom
            alias = f"t{i}"
            self.aliases.append((alias, atom.predicate))
            columns = self.columns_of(atom.predicate, atom.arity)
            for position, term in enumerate(atom.terms):
                ref = f"{alias}.{columns[position]}"
                if isinstance(term, Constant):
                    self.where.append(f"{ref} = {sql_literal(term.value)}")
                elif term in self.bindings:
                    self.where.append(f"{self.bindings[term]} = {ref}")
                else:
                    self.bindings[term] = ref
            for sf in stage.scan_filters:
                self._attach_scan_filter(sf, alias, atom, columns)
            for op in stage.filters:
                self._attach_filter(op)
        for op in self.plan.unit_filters:
            self._attach_filter(op)

    def _attach_scan_filter(
        self,
        sf,
        alias: str,
        atom,
        columns: Sequence[str],
    ) -> None:
        """Render one runtime semi-join filter as an ``IN (SELECT ...)``
        conjunct on this stage's scan alias.

        The source is a materialized pre-filter table whose columns were
        created under :func:`safe_column` names; the membership subquery
        is re-evaluated at execution time, so the filter stays correct
        even when the lowering-time catalog only held an empty
        placeholder for the source (``keys`` is advisory).
        """
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                continue
            if term_column(term) == sf.column:
                self.where.append(
                    f"{alias}.{columns[position]} IN "
                    f"(SELECT {safe_column(sf.source_column)} "
                    f"FROM {sf.source})"
                )
                return
        raise PlanError(
            f"scan filter column {sf.column!r} is not bound by {atom}; "
            "the lowered plan is inconsistent"
        )

    def _attach_filter(self, op: CompareFilter | AntiJoin) -> None:
        if isinstance(op, CompareFilter):
            comp = op.comparison
            self.where.append(
                f"{self._term_sql(comp.left)} {comp.op.value} "
                f"{self._term_sql(comp.right)}"
            )
            return
        atom = op.atom
        columns = self.columns_of(atom.predicate, atom.arity)
        alias = "n"
        conditions = []
        for position, term in enumerate(atom.terms):
            ref = f"{alias}.{columns[position]}"
            if isinstance(term, Constant):
                conditions.append(f"{ref} = {sql_literal(term.value)}")
            else:
                conditions.append(f"{ref} = {self._term_sql(term)}")
        condition_sql = " AND ".join(conditions) or "TRUE"
        self.where.append(
            f"NOT EXISTS (SELECT 1 FROM {atom.predicate} {alias} "
            f"WHERE {condition_sql})"
        )

    def _term_sql(self, term: Term) -> str:
        if isinstance(term, Constant):
            return sql_literal(term.value)
        try:
            return self.bindings[term]
        except KeyError:
            raise PlanError(
                f"term {term} is unbound in the lowered plan; "
                "the rule is unsafe"
            ) from None

    def add_partition_predicate(
        self, column: str, parts: int, index: int
    ) -> None:
        """Restrict this branch to one hash partition of ``column``.

        The predicate goes on the *first binding* of the column's term —
        the earliest scan in join order — so the engine prunes rows
        before any join runs.  ``repro_partition`` is the backend's UDF
        over :func:`repro.engine.partition.stable_hash`; the built-in
        hash is not used because partition assignment must agree across
        worker connections and with the in-memory engine's plans.
        """
        for term, ref in self.bindings.items():
            if term_column(term) == column:
                self.where.append(
                    f"repro_partition({ref}) % {parts} = {index}"
                )
                return
        raise PlanError(
            f"partition column {column!r} is not bound by any positive "
            "subgoal of this branch; the step cannot be partitioned"
        )

    def select_sql(self) -> str:
        root = self.plan.root
        select_items = [
            f"{self._term_sql(term)} AS {safe_column(label)}"
            for term, label in zip(root.output_terms, root.columns)
        ]
        sql = f"SELECT DISTINCT {', '.join(select_items)}"
        if self.aliases:
            from_items = ", ".join(
                f"{table} {alias}" for alias, table in self.aliases
            )
            sql += f"\nFROM {from_items}"
        if self.where:
            sql += "\nWHERE " + "\n  AND ".join(self.where)
        return sql


def _having_sql(step: StepPlan) -> str:
    """The HAVING clause: one conjunct per threshold condition.

    COUNT counts distinct answer tuples (``COUNT(DISTINCT ...)``);
    SUM/MIN/MAX aggregate per answer row — the branch ``SELECT
    DISTINCT`` already made answer rows unique, and DISTINCT inside the
    aggregate would wrongly collapse equal values from different
    answers.
    """
    spec_by_column = {spec.column: spec for spec in step.group.aggregates}
    clauses: list[str] = []
    for condition, column in step.threshold.conditions:
        clauses.append(
            f"{_aggregate_sql(spec_by_column[column])} "
            f"{condition.op.value} {condition.threshold}"
        )
    return " AND ".join(clauses)


def _aggregate_sql(spec) -> str:
    inner = ", ".join(safe_column(c) for c in spec.target)
    if spec.fn is AggregateFunction.COUNT:
        return f"COUNT(DISTINCT {inner})"
    return f"{spec.fn.value}({inner})"


def render_step(
    step: StepPlan,
    columns_of: ColumnSource,
    include_aggregates: bool = False,
    partition: tuple[str, int, int] | None = None,
) -> str:
    """Render one FILTER step plan as a single SELECT statement
    (no trailing semicolon).

    ``include_aggregates=True`` appends the aggregate value of every
    threshold conjunct to the SELECT list (column per
    :class:`~repro.engine.ir.AggregateSpec`), mirroring the in-memory
    engine's ``group_filter`` output — what the session cache stores and
    what the differential tests compare.

    ``partition=(column, parts, index)`` renders one partition of the
    step: every branch gains a ``repro_partition(...) % parts = index``
    conjunct on the column's first binding.  Groups are keyed on the
    partition column, so the rendered statement returns exactly the
    survivors whose key hashes into ``index`` (see
    :mod:`repro.engine.partition` for the argument).
    """
    from ..analysis.verification import plan_verification_enabled

    if plan_verification_enabled():
        # Same pre-execution gate as the in-memory engine: reject a
        # malformed step before any SQL reaches the database.  Catalog
        # checks are skipped here — the SQL backend resolves relations
        # against its own schema at execution time.
        from ..analysis.schema import assert_physical_plan

        assert_physical_plan(step)
    branches = []
    for branch in step.branches:
        renderer = _BranchRenderer(branch, columns_of)
        if partition is not None:
            renderer.add_partition_predicate(*partition)
        branches.append(renderer.select_sql())
    inner = "\nUNION\n".join(branches)
    group_names = [safe_column(c) for c in step.root.columns]
    select_items = list(group_names)
    if include_aggregates:
        select_items += [
            f"{_aggregate_sql(spec)} AS {spec.column}"
            for spec in step.group.aggregates
        ]
    return (
        f"SELECT {', '.join(select_items)}\n"
        f"FROM (\n{_indent(inner)}\n) answer\n"
        f"GROUP BY {', '.join(group_names)}\n"
        f"HAVING {_having_sql(step)}"
    )


def materialize_step(step: StepPlan, columns_of: ColumnSource) -> str:
    """Render one pre-filter step as a materialized table.

    ``CREATE TABLE ... AS`` rather than a view: a view would be
    re-expanded by most engines, losing the point of computing the
    filter once (Section 1.3).
    """
    body = render_step(step, columns_of)
    return f"CREATE TABLE {step.root.name} AS\n{_indent(body)}"


def column_source(db, schemas: dict[str, Sequence[str]]) -> ColumnSource:
    """A :data:`ColumnSource` over a catalog plus step-table schemas."""

    def columns_of(predicate: str, arity: int) -> Sequence[str]:
        if predicate in schemas:
            return list(schemas[predicate])
        if db is not None and predicate in db:
            return list(db.get(predicate).columns)
        return [f"c{i}" for i in range(arity)]

    return columns_of
