"""Shared-memory publication of an encoded catalog for pool workers.

The process pool used to be seeded by pickling the whole base catalog
into every worker — every row tuple serialized, shipped, and rebuilt N
times.  With the encoded representation the catalog is just flat
``int64`` code columns plus one value dictionary, so the parent can
instead:

1. :func:`publish` — pack every relation's code columns back-to-back
   into a single ``multiprocessing.shared_memory`` segment, and hand
   workers a tiny :class:`CatalogDescriptor`: the segment *name*, the
   dictionary's value snapshot, and per-relation ``(name, columns,
   count, offsets)`` layouts.  No row data crosses the process boundary.
2. :func:`attach` — a worker opens the segment by name, casts the
   buffer to ``int64`` slots, and slices each column straight out of the
   mapping (an O(rows) integer copy at C speed — no unpickling, no
   value reconstruction).  The rebuilt relations are born encoded, so
   partition restriction uses per-code partition tables immediately.

Because interning is append-only, every code in the segment indexes the
snapshot prefix on both sides forever — workers can intern new values
locally without invalidating anything, and any result whose codes stay
below the snapshot size can be shipped back as flat buffers too (see
``_pack_survivors`` in :mod:`repro.engine.parallel`).

The parent owns the segment's lifetime: it unlinks on
:meth:`SharedCatalog.close`.  Workers detach their handle from the
``resource_tracker`` (or attach with ``track=False`` on Python ≥ 3.13)
so a worker exit cannot destroy the parent's data mid-run.  When shared
memory is unavailable — no ``/dev/shm``, permission failure — both
entry points degrade to ``None`` and the executor falls back to the
pickled-catalog seeding it always had.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, Optional

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - platform without shm support
    shared_memory = None  # type: ignore[assignment]

from ..relational.catalog import Database
from ..relational.dictionary import ValueDictionary
from ..relational.relation import CODE_BYTES, Relation


@dataclass(frozen=True)
class RelationLayout:
    """Where one relation's code columns live inside the segment."""

    name: str
    columns: tuple[str, ...]
    count: int
    #: Start of each column, in int64 slots from the segment base.
    offsets: tuple[int, ...]


@dataclass(frozen=True)
class CatalogDescriptor:
    """Everything a worker needs to rebuild the catalog.

    This — not the row data — is what pickles into the pool initializer:
    a segment name, the dictionary's value snapshot (codes below
    ``len(values)`` mean the same value in parent and worker forever),
    and one :class:`RelationLayout` per relation.
    """

    segment: str
    total_slots: int
    values: tuple
    relations: tuple[RelationLayout, ...]

    @property
    def nbytes(self) -> int:
        """Flat size of the published code columns."""
        return self.total_slots * CODE_BYTES


class SharedCatalog:
    """Parent-side handle on a published segment; owns its lifetime."""

    def __init__(self, shm: Any, descriptor: CatalogDescriptor):
        self._shm = shm
        self.descriptor = descriptor

    def close(self) -> None:
        """Unlink the segment (idempotent).  Workers that already
        attached keep their mapping; new attaches fail, which is fine —
        the executor only closes after shutting its pool down."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
            shm.unlink()
        except OSError:  # pragma: no cover - segment already gone
            pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.close()


def publish(db: Database) -> Optional[SharedCatalog]:
    """Pack ``db``'s encoded relations into one shared-memory segment.

    Encodes every relation against the catalog's dictionary first, then
    snapshots the dictionary — append-only interning guarantees every
    published code indexes the snapshot.  Returns ``None`` when shared
    memory is unavailable, leaving the caller on the pickle path.
    """
    if shared_memory is None:
        return None
    layouts: list[RelationLayout] = []
    chunks: list[tuple[int, list[int]]] = []
    offset = 0
    for name in db.names():
        relation = db.encoded(name)
        offsets: list[int] = []
        for codes in relation.code_columns():
            offsets.append(offset)
            chunks.append((offset, codes))
            offset += len(relation)
        layouts.append(
            RelationLayout(
                name, relation.columns, len(relation), tuple(offsets)
            )
        )
    try:
        segment = shared_memory.SharedMemory(
            create=True, size=max(offset, 1) * CODE_BYTES
        )
    except (OSError, ValueError):  # pragma: no cover - /dev/shm failure
        return None
    view = memoryview(segment.buf).cast("q")
    try:
        for start, codes in chunks:
            view[start:start + len(codes)] = array("q", codes)
    finally:
        view.release()
    descriptor = CatalogDescriptor(
        segment=segment.name,
        total_slots=offset,
        values=tuple(db.dictionary.values),
        relations=tuple(layouts),
    )
    return SharedCatalog(segment, descriptor)


def attach(descriptor: CatalogDescriptor) -> Optional[Database]:
    """Rebuild the catalog in a worker from a published descriptor.

    Slices each column's code slots straight out of the shared mapping
    and closes the worker's handle again (the lists are worker-local
    from then on; the parent keeps the segment alive for later
    attaches).  Returns ``None`` when the segment cannot be opened —
    the worker then expects a pickled catalog instead.
    """
    if shared_memory is None:  # pragma: no cover - platform without shm
        return None
    try:
        try:
            segment = shared_memory.SharedMemory(
                name=descriptor.segment, track=False
            )
        except TypeError:  # Python < 3.13: no track flag
            segment = shared_memory.SharedMemory(name=descriptor.segment)
            _untrack(segment)
    except (OSError, ValueError):  # pragma: no cover - segment gone
        return None
    dictionary = ValueDictionary(descriptor.values)
    db = Database(dictionary=dictionary)
    try:
        view = memoryview(segment.buf).cast("q")
        try:
            for layout in descriptor.relations:
                codes = [
                    view[start:start + layout.count].tolist()
                    for start in layout.offsets
                ]
                db.add(
                    Relation.from_encoded(
                        layout.name,
                        layout.columns,
                        codes,
                        dictionary,
                        count=layout.count,
                    )
                )
        finally:
            view.release()
    finally:
        segment.close()
    return db


def _untrack(segment: Any) -> None:
    """Detach a worker-side handle from the ``resource_tracker``.

    On Python 3.10–3.12 every ``SharedMemory`` attach registers with the
    tracker, which can then *unlink the segment when the worker exits* —
    destroying the parent's published catalog mid-run.  The parent owns
    the segment; worker handles must be invisible to cleanup.

    Under the ``fork`` start method (the Linux default) workers inherit
    the parent's tracker process, whose registration cache is a set — the
    attach-side register is a no-op there and unregistering would strip
    the *parent's* entry instead (the tracker then complains when the
    parent unlinks).  Only spawned/forkserver workers, with their own
    tracker, need the unregister.
    """
    try:
        import multiprocessing
        from multiprocessing import resource_tracker

        if multiprocessing.get_start_method(allow_none=True) == "fork":
            return
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


__all__ = [
    "CatalogDescriptor",
    "RelationLayout",
    "SharedCatalog",
    "attach",
    "publish",
]
