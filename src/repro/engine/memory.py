"""The in-memory interpreter for physical plans, over columnar relations.

Executes a :class:`~repro.engine.ir.PhysicalPlan` stage by stage —
batch-at-a-time columnar hash joins, comparison filters and anti-joins —
with the guard checkpoint, trace row and fault-injection trip point for
each stage emitted in exactly one place.  Binding relations are cached
per engine instance, so a union's branches (or a dynamic re-plan) never
rebuild the same scan twice.
"""

# conlint: hot-module — loops here are engine kernels; the
# cancellation-responsiveness pass requires each hot loop to poll
# the execution guard (see docs/CONCURRENCY.md).

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass
from operator import itemgetter
from typing import Callable, Optional, Sequence

from ..datalog.atoms import RelationalAtom
from ..datalog.terms import is_bindable
from ..guard import ExecutionGuard, GuardLike, as_guard
from ..relational.aggregates import group_aggregate
from ..relational.binding import (
    apply_comparison,
    atom_binding_relation,
    term_column,
    unit_relation,
)
from ..relational.catalog import Database
from ..relational.operators import anti_join, natural_join
from ..relational.relation import Relation
from ..testing.faults import trip
from .ir import (
    AntiJoin,
    CompareFilter,
    JoinStage,
    Materialize,
    PhysicalPlan,
    ScanFilter,
    StageObservation,
    StepPlan,
)


@dataclass
class StepResult:
    """Everything a FILTER step produces, before and after the filter.

    ``answer`` is the unioned rule result; ``passed`` keeps the
    surviving groups *with* their aggregate columns (what the session
    cache stores); ``result`` is the materialized survivor relation.
    """

    answer: Relation
    passed: Relation
    result: Relation


class MemoryEngine:
    """Interpret physical plans over the columnar in-memory relations.

    Args:
        db: the database plans were lowered against.
        guard: optional execution guard; each join stage notes a trace
            row and checkpoints through it.
        trip_site: the fault-injection site tripped once per join stage
            (``"relational.join"`` for the shared evaluator,
            ``"dynamic.join"`` when the dynamic strategy drives stages).
        scan_restrict: optional hook applied to every freshly built
            binding relation — the parallel executor installs a
            partition predicate here
            (:func:`repro.engine.partition.partition_restrictor`), so
            one engine instance interprets one partition of the plan.
        encode_scans: intern every scanned base relation against the
            database's shared dictionary so joins, grouping, and
            threshold filters run on integer code columns (the default).
            ``False`` forces the legacy value-array data plane — kept
            for the encoded-vs-legacy differential tests.
    """

    def __init__(
        self,
        db: Database,
        guard: GuardLike = None,
        trip_site: str = "relational.join",
        scan_restrict: Optional[
            Callable[[RelationalAtom, Relation], Relation]
        ] = None,
        encode_scans: bool = True,
    ):
        self.db = db
        self.guard: ExecutionGuard | None = as_guard(guard)
        self.trip_site = trip_site
        self.scan_restrict = scan_restrict
        self.encode_scans = encode_scans
        self._bindings: dict[RelationalAtom, Relation] = {}
        self._filtered_scans: dict[
            tuple[RelationalAtom, tuple[ScanFilter, ...]], Relation
        ] = {}
        #: Per-stage estimate/bound/actual observations, appended by
        #: :meth:`run_stage` across every plan this engine runs.
        self.stage_log: list[StageObservation] = []
        #: Total scan rows pruned by runtime semi-join filters.
        self.rows_pruned: int = 0

    def _verify_before_execution(self, plan: PhysicalPlan | StepPlan) -> None:
        """Reject a malformed plan before running its first join, when
        the ambient verification switch is on.  Plans straight out of
        :mod:`repro.engine.planner` are checked at lowering already; this
        catches hand-built or hand-modified plans handed to the engine."""
        from ..analysis.verification import plan_verification_enabled

        if plan_verification_enabled():
            from ..analysis.schema import assert_physical_plan

            assert_physical_plan(plan, db=self.db)

    # ------------------------------------------------------------------
    # Leaf and filter operators
    # ------------------------------------------------------------------

    def scan_atom(self, atom: RelationalAtom) -> Relation:
        """The (cached) binding relation of one positive subgoal."""
        cached = self._bindings.get(atom)
        if cached is None:
            cached = atom_binding_relation(self.db, atom, encode=self.encode_scans)
            if self.scan_restrict is not None:
                cached = self.scan_restrict(atom, cached)
            self._bindings[atom] = cached
        return cached

    def apply_scan_filter(self, rel: Relation, sf: ScanFilter) -> Relation:
        """Semi-join one scan against a runtime filter's survivor keys.

        When both sides are encoded against the *same* dictionary object
        the membership test runs over integer codes (codes are
        equality-faithful, so code membership is value membership);
        otherwise — e.g. in a process worker whose pickled relations
        carry distinct dictionary copies — it falls back to decoded
        values, which is always correct.
        """
        source = self.db.get(sf.source)
        source_pos = source.column_position(sf.source_column)
        pos = rel.column_position(sf.column)
        if (
            rel.is_encoded
            and source.is_encoded
            and rel.dictionary is source.dictionary
        ):
            keys = set(source.code_columns()[source_pos])
            column: Sequence = rel.code_columns()[pos]
        else:
            keys = set(source.columns_data()[source_pos])
            column = rel.columns_data()[pos]
        keep = [i for i, v in enumerate(column) if v in keys]
        if len(keep) == len(rel):
            return rel
        return rel.take(keep, name=rel.name)

    def _filtered_scan(
        self, stage: JoinStage, leaf: Relation | None
    ) -> Relation:
        """The stage's scan with its runtime filters applied (cached per
        (atom, filters) so union branches and re-plans prune once)."""
        base = leaf if leaf is not None else self.scan_atom(stage.scan.atom)
        if not stage.scan_filters:
            return base
        key = (stage.scan.atom, stage.scan_filters)
        if leaf is None:
            cached = self._filtered_scans.get(key)
            if cached is not None:
                return cached
        rel = base
        for sf in stage.scan_filters:
            before = len(rel)
            rel = self.apply_scan_filter(rel, sf)
            self.rows_pruned += before - len(rel)
            if self.guard is not None:
                self.guard.checkpoint(rows=len(rel), node=stage.node)
        if leaf is None:
            self._filtered_scans[key] = rel
        return rel

    def apply_filter(
        self, current: Relation, op: CompareFilter | AntiJoin
    ) -> Relation:
        """Apply one attached filter operator to the running result."""
        if isinstance(op, CompareFilter):
            return apply_comparison(current, op.comparison)
        neg = op.atom
        neg_rel = self.scan_atom(neg.with_positive_polarity())
        if neg.bindable_terms():
            return anti_join(current, neg_rel, name=current.name)
        # Ground negation: NOT p(c1,...,ck) empties the result iff the
        # selected relation is nonempty.
        if len(neg_rel):
            return Relation(current.name, current.columns)
        return current

    # ------------------------------------------------------------------
    # Rule plans
    # ------------------------------------------------------------------

    def run_stage(
        self,
        current: Relation | None,
        stage: JoinStage,
        leaf: Relation | None = None,
        join_name: str = "join",
    ) -> Relation:
        """One join stage: trip, join, attached filters, guard note.

        ``current=None`` makes the stage's scan the running result (the
        dynamic strategy's first stage; the shared evaluator passes the
        unit relation instead so the trace reports 1 input tuple).
        ``leaf`` overrides the scan with an already-reduced binding
        relation (a dynamically filtered leaf); ``join_name`` names the
        join result (``temp{n}`` under the dynamic strategy).
        """
        trip(self.trip_site)
        started = time.perf_counter()
        before = len(current) if current is not None else 0
        scan_rel = self._filtered_scan(stage, leaf)
        if current is None:
            current = scan_rel
        else:
            current = natural_join(current, scan_rel, name=join_name)
        for op in stage.filters:
            current = self.apply_filter(current, op)
            if self.guard is not None:
                self.guard.checkpoint(rows=len(current), node=stage.node)
        self.stage_log.append(
            StageObservation(
                node=stage.node,
                estimated=stage.estimate,
                bound=stage.bound,
                actual=len(current),
            )
        )
        if self.guard is not None:
            self.guard.note_step(
                name=stage.node,
                description=str(stage.scan.atom),
                input_tuples=before,
                output_assignments=len(current),
                seconds=time.perf_counter() - started,
                filtered=False,
            )
            self.guard.checkpoint(rows=len(current), node=stage.node)
        return current

    def run_plan(self, plan: PhysicalPlan) -> Relation:
        """Execute one rule plan end to end, including materialization."""
        self._verify_before_execution(plan)
        current = unit_relation()
        for stage in plan.stages:
            current = self.run_stage(current, stage)
        for op in plan.unit_filters:
            current = self.apply_filter(current, op)
            if self.guard is not None:
                self.guard.checkpoint(rows=len(current), node="unit filter")
        return self.materialize(current, plan.root)

    def materialize(self, current: Relation, root: Materialize) -> Relation:
        """Project onto the output terms under the plan's labels,
        re-inserting constant head terms positionally."""
        dictionary = current.dictionary if current.is_encoded else None
        cols: Sequence[Sequence] = (
            current.code_columns() if dictionary is not None
            else current.columns_data()
        )
        n = len(current)
        entries: list[object] = []  # column position | ("const", value)
        positions: list[int] = []
        for term in root.output_terms:
            if is_bindable(term):
                p = current.column_position(term_column(term))
                positions.append(p)
                entries.append(p)
            else:
                entries.append(("const", term.value))  # type: ignore[union-attr]

        if len(set(positions)) == len(cols):
            # Output covers every column: rows stay distinct.  On the
            # encoded path a constant head term is interned so the
            # output stays in code space.
            if dictionary is not None:
                codes = [
                    cols[e] if isinstance(e, int)
                    else [dictionary.intern(e[1])] * n
                    for e in entries
                ]
                return Relation.from_encoded(
                    root.name, root.columns, codes, dictionary, count=n
                )
            arrays = [
                cols[e] if isinstance(e, int) else [e[1]] * n for e in entries
            ]
            return Relation.from_columns(root.name, root.columns, arrays, count=n)

        # The projection drops columns: deduplicate the bindable part
        # (in code space when encoded — codes are equality-faithful, so
        # code-distinct is value-distinct), then re-insert constants
        # (which cannot split groups).
        if not positions:
            rows: set[tuple] = {()} if n else set()
        elif len(positions) == 1:
            rows = {(v,) for v in cols[positions[0]]}
        else:
            rows = set(zip(*(cols[p] for p in positions)))
        const_inserts = [
            (
                i,
                dictionary.intern(e[1]) if dictionary is not None else e[1],
            )
            for i, e in enumerate(entries)
            if not isinstance(e, int)
        ]
        if const_inserts:
            out_rows = set()
            for row in rows:
                values = list(row)
                for i, v in const_inserts:
                    values.insert(i, v)
                out_rows.add(tuple(values))
            rows = out_rows
        if dictionary is not None:
            code_arrays = (
                [list(col) for col in zip(*rows)]
                if rows
                else [[] for _ in root.columns]
            )
            return Relation.from_encoded(
                root.name, root.columns, code_arrays, dictionary,
                count=len(rows),
            )
        return Relation.from_distinct_rows(root.name, root.columns, rows)

    # ------------------------------------------------------------------
    # Step plans (FILTER steps / flock answers)
    # ------------------------------------------------------------------

    def run_answer(
        self, step: StepPlan, union_node: str | None = None
    ) -> Relation:
        """The unioned answer relation of a step's rule branches.

        ``union_node`` names a guard checkpoint fired after each branch
        (the union operator's single instrumentation point).
        """
        if len(step.branches) == 1 and union_node is None:
            return self.run_plan(step.branches[0]).with_name("answer")
        rows: set[tuple] = set()
        for branch in step.branches:
            rows |= self.run_plan(branch).tuples
            if union_node is not None and self.guard is not None:
                self.guard.checkpoint(rows=len(rows), node=union_node)
        return Relation.from_distinct_rows(
            "answer", step.answer_columns, rows
        )

    def group_filter(
        self,
        answer: Relation,
        group_by,
        aggregates,
        conditions,
        name: str = "ok",
    ) -> Relation:
        """GroupAggregate + ThresholdFilter: the surviving groups with
        their aggregate value columns (one ``_agg{i}`` per conjunct)."""
        grouped: Relation | None = None
        for spec in aggregates:
            agg = group_aggregate(
                answer,
                list(group_by),
                spec.fn,
                target=list(spec.target),
                result_column=spec.column,
            )
            grouped = (
                agg if grouped is None else natural_join(grouped, agg, name="agg")
            )
            if self.guard is not None:
                self.guard.checkpoint(rows=len(grouped), node=spec.column)
        assert grouped is not None
        return grouped.take(self._threshold_keep(grouped, conditions), name=name)

    @staticmethod
    def _threshold_keep(grouped: Relation, conditions) -> list[int]:
        """Row indexes of ``grouped`` passing every threshold conjunct.

        Vectorized: on an encoded relation each condition is evaluated
        once per *distinct* aggregate code (the passing-code set), then
        rows are kept by integer set membership; on a plain relation the
        condition's batch evaluator scans the value column directly.
        Either way no per-row ``passes()`` method call remains.
        """
        keep: list[int] | None = None
        dictionary = grouped.dictionary if grouped.is_encoded else None
        for cond, column in conditions:
            pos = grouped.column_position(column)
            if dictionary is not None:
                col = grouped.code_columns()[pos]
                values = dictionary.values
                passes = cond.passes
                passing = {c for c in set(col) if passes(values[c])}
                if keep is None:
                    keep = [i for i, c in enumerate(col) if c in passing]
                else:
                    keep = [i for i in keep if col[i] in passing]
            else:
                col = grouped.columns_data()[pos]
                if keep is None:
                    keep = cond.passing_indexes(col)
                else:
                    passes = cond.passes
                    keep = [i for i in keep if passes(col[i])]
        if keep is None:
            keep = list(range(len(grouped)))
        return keep

    def run_group_filter(self, answer: Relation, step: StepPlan) -> Relation:
        return self.group_filter(
            answer,
            step.group.group_by,
            step.group.aggregates,
            step.threshold.conditions,
            name=step.root.name,
        )

    @staticmethod
    def _early_exit_cap(conditions: Sequence[tuple]) -> int | None:
        """The distinct-count bound at which a group's survival is
        decided, when early-exit counting applies: exactly one
        threshold conjunct, of support shape (``COUNT >= k`` /
        ``COUNT > k``).  ``None`` means exact aggregates are needed."""
        if len(conditions) != 1:
            return None
        condition, _column = conditions[0]
        if not getattr(condition, "is_support_condition", False):
            return None
        cap = max(1, math.floor(float(condition.threshold)))
        while not condition.passes(cap):
            cap += 1
        return cap

    def survivor_filter(
        self,
        answer: Relation,
        group_by: Sequence[str],
        aggregates: Sequence,
        conditions: Sequence[tuple],
        name: str = "ok",
    ) -> Relation:
        """The surviving group keys only — no aggregate value columns.

        For the common support filter (a single ``COUNT >= k``
        conjunct) this counts with early exit: a group stops counting —
        and stops accumulating its distinct-target set — the moment it
        reaches the bound, since only survivorship is needed.  Other
        filters fall back to :meth:`group_filter` plus a projection.

        Rows come out canonically sorted, like :meth:`project_unique`.
        """
        cap = self._early_exit_cap(conditions)
        if cap is None:
            passed = self.group_filter(
                answer, group_by, aggregates, conditions, name=name
            )
            return self.project_unique(passed, list(group_by), name)
        spec = aggregates[0]
        dictionary = answer.dictionary if answer.is_encoded else None
        cols: Sequence[Sequence] = (
            answer.code_columns() if dictionary is not None
            else answer.columns_data()
        )
        key_positions = [answer.column_position(c) for c in group_by]
        target_positions = [answer.column_position(c) for c in spec.target]
        key_arrays = [cols[p] for p in key_positions]
        group_set = set(group_by)
        covers_members = set(spec.target) == {
            c for c in answer.columns if c not in group_set
        }

        # Counting runs entirely in C: rows are distinct (set
        # semantics), so when the COUNT target covers every non-group
        # column the distinct-target count per group is simply the
        # group's row count — one Counter over the key columns.  For a
        # strict subset target, distinct (key, target) pairs collapse
        # through a set first, then the keys are counted.
        nk = len(key_positions)
        counts: Counter
        if nk == 0:
            # No parameters: the whole answer is one group.
            if covers_members:
                total = len(answer)
            else:
                total = len(set(zip(*(cols[p] for p in target_positions))))
            counts = Counter({(): total} if total else {})
        elif covers_members:
            if nk == 1:
                counts = Counter(key_arrays[0])
            else:
                counts = Counter(zip(*key_arrays))
        else:
            target_arrays = [cols[p] for p in target_positions]
            pairs = set(zip(*key_arrays, *target_arrays))
            picker = (
                itemgetter(0) if nk == 1 else itemgetter(slice(0, nk))
            )
            counts = Counter(map(picker, pairs))

        survivor_keys = [key for key, c in counts.items() if c >= cap]
        coded_rows = (
            [(key,) for key in survivor_keys] if nk == 1 else survivor_keys
        )
        if dictionary is not None:
            # Canonical order sorts by the *decoded* repr (identical to
            # the legacy path); only survivors pay the decode.
            values = dictionary.values
            coded_rows.sort(
                key=lambda row: repr(tuple(values[c] for c in row))
            )
            arrays = (
                [list(column) for column in zip(*coded_rows)]
                if coded_rows
                else [[] for _ in group_by]
            )
            return Relation.from_encoded(
                name, tuple(group_by), arrays, dictionary,
                count=len(coded_rows),
            )
        rows = sorted(coded_rows, key=repr)
        arrays = (
            [list(column) for column in zip(*rows)]
            if rows
            else [[] for _ in group_by]
        )
        return Relation.from_columns(
            name, tuple(group_by), arrays, count=len(rows)
        )

    def run_survivors(self, answer: Relation, step: StepPlan) -> Relation:
        """Survivors of one step when only the ok-relation is needed
        (no session sink wants the aggregate values)."""
        return self.survivor_filter(
            answer,
            step.group.group_by,
            step.group.aggregates,
            step.threshold.conditions,
            name=step.root.name,
        )

    def project_unique(self, rel: Relation, columns, name: str) -> Relation:
        """Project onto ``columns`` when they are known to stay unique
        (e.g. group keys after aggregation) — no dedup pass.

        Rows come out canonically sorted (by ``repr``), never in dict or
        set iteration order: serial and parallel runs, and memory and
        SQLite backends, must produce identical column arrays so result
        diffs are stable.
        """
        data = rel.columns_data()
        arrays = [data[rel.column_position(c)] for c in columns]
        n = len(rel)
        if n > 1 and arrays:
            rows = sorted(zip(*arrays), key=repr)
            arrays = [list(column) for column in zip(*rows)]
        return Relation.from_columns(name, tuple(columns), arrays, count=n)

    def finalize_step(self, passed: Relation, step: StepPlan) -> Relation:
        """Materialize the survivor relation (group columns only).

        Group keys are unique in the aggregated relation, so dropping
        the aggregate columns preserves distinctness.
        """
        return self.project_unique(passed, step.root.columns, step.root.name)

    def run_step(
        self, step: StepPlan, union_node: str | None = None
    ) -> StepResult:
        """Execute one FILTER step end to end."""
        self._verify_before_execution(step)
        answer = self.run_answer(step, union_node=union_node)
        passed = self.run_group_filter(answer, step)
        return StepResult(
            answer=answer,
            passed=passed,
            result=self.finalize_step(passed, step),
        )
