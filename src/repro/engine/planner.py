"""Lowering: logical rules and FILTER steps become physical plans, once.

The planner turns one extended conjunctive query into a
:class:`~repro.engine.ir.PhysicalPlan`: pick a join order (greedy,
Selinger, pessimistic UES, or caller-supplied), emit one
:class:`JoinStage` per positive subgoal, attach each
comparison/negation to the earliest stage where its terms are bound
(the same eager placement Sections 4.1–4.3 assume for selections),
compute System-R style size estimates *and* guaranteed UES upper bounds
per stage, push runtime semi-join filters into scans whose columns a
materialized pre-filter step already constrains, and close with a
:class:`Materialize` projection.  :func:`lower_step` wraps the
rule plans of one ``R(P) := FILTER(P, Q, C)`` step with the union /
group-aggregate / threshold-filter operators.

Both engines — in-memory (:mod:`repro.engine.memory`) and SQLite
(:mod:`repro.engine.sqlgen`) — interpret the plans built here; no
strategy or backend re-derives ordering or filter placement on its own.
"""

from __future__ import annotations

from typing import Collection, Mapping, Sequence

from ..datalog.atoms import RelationalAtom
from ..datalog.query import ConjunctiveQuery
from ..datalog.terms import Term, is_bindable
from ..errors import EvaluationError
from ..relational.binding import term_column
from ..relational.catalog import Database
from ..relational.joinorder import (
    ScanCaps,
    chain_upper_bounds,
    greedy_join_order,
    selinger_join_order,
    ues_join_order,
)
from .ir import (
    AggregateSpec,
    AntiJoin,
    CompareFilter,
    GroupAggregate,
    HashJoin,
    JoinStage,
    Materialize,
    PhysicalPlan,
    Scan,
    ScanFilter,
    StepPlan,
    ThresholdFilter,
    UnionOp,
)


def order_positive_atoms(
    db: Database,
    positives: Sequence[RelationalAtom],
    order_strategy: str = "greedy",
    join_order: Sequence[int] | None = None,
    scan_caps: ScanCaps | None = None,
) -> tuple[list[int], str]:
    """The join order to lower with, and the label it renders under.

    An explicit ``join_order`` (indices into ``positives``) wins over
    the strategy; it must be a permutation.  ``scan_caps`` carries the
    runtime-filter key counts only the pessimistic (``"ues"``) order
    uses — the estimate-driven orders ignore them.
    """
    if join_order is not None:
        order = list(join_order)
        if sorted(order) != list(range(len(positives))):
            raise EvaluationError(
                f"join_order {order} is not a permutation of the "
                f"{len(positives)} positive subgoals"
            )
        return order, "explicit"
    if order_strategy == "greedy":
        return greedy_join_order(db, positives), "greedy"
    if order_strategy == "selinger":
        return selinger_join_order(db, positives), "selinger"
    if order_strategy == "ues":
        return ues_join_order(db, positives, scan_caps), "ues"
    raise ValueError(
        f"unknown order strategy {order_strategy!r}; "
        "use 'greedy', 'selinger' or 'ues'"
    )


def scan_columns(atom: RelationalAtom) -> tuple[str, ...]:
    """The binding-relation columns of one subgoal: rendered bindable
    terms, first occurrence only (constants/repeats are selections)."""
    seen: set[str] = set()
    columns: list[str] = []
    for term in atom.terms:
        if is_bindable(term):
            column = term_column(term)
            if column not in seen:
                seen.add(column)
                columns.append(column)
    return tuple(columns)


def _column_for(db: Database, atom: RelationalAtom, rendered: str) -> str:
    """The base-relation column an atom binds for a rendered term name."""
    columns = db.get(atom.predicate).columns
    for position, term in enumerate(atom.terms):
        if term_column(term) == rendered and position < len(columns):
            return columns[position]
    return rendered


def scan_filter_map(
    db: Database,
    positives: Sequence[RelationalAtom],
    runtime_filters: Collection[str] | None,
) -> dict[str, ScanFilter]:
    """Rendered column → the tightest runtime semi-join filter for it.

    ``runtime_filters`` names materialized pre-filter results (``ok``
    relations of earlier plan steps) present in ``db``.  A filter on
    column ``c`` sourced from ``S`` is *sound* for this rule only
    because some positive subgoal of the rule is an ``S``-atom binding
    ``c`` — the join with ``S`` would discard non-survivor rows anyway,
    so the scan-time semi-join is pure work removal.  When two sources
    cover the same column the smaller survivor set wins.
    """
    if not runtime_filters:
        return {}
    filters: dict[str, ScanFilter] = {}
    for atom in positives:
        if atom.predicate not in runtime_filters or atom.predicate not in db:
            continue
        source = db.get(atom.predicate)
        keys = len(source)
        for position, term in enumerate(atom.terms):
            if not is_bindable(term) or position >= len(source.columns):
                continue
            column = term_column(term)
            incumbent = filters.get(column)
            if incumbent is None or keys < incumbent.keys:
                filters[column] = ScanFilter(
                    column=column,
                    source=atom.predicate,
                    source_column=source.columns[position],
                    keys=keys,
                )
    return filters


def _scan_caps(
    positives: Sequence[RelationalAtom],
    filters: Mapping[str, ScanFilter],
) -> dict[int, dict[str, int]]:
    """Per-atom column caps for the UES bound algebra, mirroring exactly
    the scan filters :func:`lower_rule` will attach."""
    caps: dict[int, dict[str, int]] = {}
    for index, atom in enumerate(positives):
        entry = {
            column: filters[column].keys
            for column in scan_columns(atom)
            if column in filters and filters[column].source != atom.predicate
        }
        if entry:
            caps[index] = entry
    return caps


def lower_rule(
    db: Database,
    query: ConjunctiveQuery,
    output_terms: Sequence[Term] | None = None,
    output_columns: Sequence[str] | None = None,
    join_order: Sequence[int] | None = None,
    order_strategy: str = "greedy",
    runtime_filters: Collection[str] | None = None,
) -> PhysicalPlan:
    """Lower one rule to a physical plan.

    Args:
        db: catalog supplying cardinalities and distinct counts.
        query: a safe extended conjunctive query.
        output_terms: terms to project onto; defaults to the head terms.
        output_columns: labels for the output columns; defaults to the
            rendered terms (constants become ``_const{i}``).
        join_order: explicit positive-subgoal order (wins over
            ``order_strategy``).
        order_strategy: ``"greedy"``, ``"selinger"`` or ``"ues"``.
        runtime_filters: names of materialized pre-filter results whose
            survivor keys may be pushed into later scans as
            :class:`~repro.engine.ir.ScanFilter` operators (sideways
            information passing).
    """
    positives = query.positive_atoms()
    filters_by_column = scan_filter_map(db, positives, runtime_filters)
    caps = _scan_caps(positives, filters_by_column)
    order, strategy_label = order_positive_atoms(
        db, positives, order_strategy=order_strategy, join_order=join_order,
        scan_caps=caps,
    )
    # Guaranteed output bounds along the chosen order — computed for
    # every strategy (the algebra is cheap) so EXPLAIN can print
    # estimate vs bound and the dynamic evaluator can re-plan against
    # the tighter of the two.
    stage_bounds = chain_upper_bounds(db, positives, order, caps)
    pending_comparisons = list(query.comparisons())
    pending_negations = list(query.negated_atoms())

    stages: list[JoinStage] = []
    bound: set[str] = set()
    running = 1.0
    prev_columns: tuple[str, ...] = ()

    def attach_bound_filters(columns: tuple[str, ...]):
        attached: list = []
        progress = True
        while progress:
            progress = False
            for comp in list(pending_comparisons):
                if all(term_column(t) in bound for t in comp.bindable_terms()):
                    attached.append(CompareFilter(comp, columns))
                    pending_comparisons.remove(comp)
                    progress = True
            for neg in list(pending_negations):
                if all(term_column(t) in bound for t in neg.bindable_terms()):
                    attached.append(AntiJoin(neg, columns))
                    pending_negations.remove(neg)
                    progress = True
        return tuple(attached)

    for position, idx in enumerate(order):
        atom = positives[idx]
        stats = db.stats(atom.predicate)
        columns = scan_columns(atom)
        scan = Scan(atom, columns, stats.cardinality)
        atom_column_set = set(columns)
        if position == 0:
            join = None
            running = float(stats.cardinality)
            stage_columns = columns
        else:
            shared = sorted(bound & atom_column_set)
            # Independence estimate with the running size as the left
            # side; join-column distincts bounded by the right relation's.
            size = running * stats.cardinality
            for shared_column in shared:
                base_column = _column_for(db, atom, shared_column)
                size /= max(stats.distinct_count(base_column), 1)
            running = size
            stage_columns = prev_columns + tuple(
                c for c in columns if c not in set(prev_columns)
            )
            join = HashJoin(tuple(shared), stage_columns, running)
        bound |= atom_column_set
        filters = attach_bound_filters(stage_columns)
        stage_scan_filters = tuple(
            filters_by_column[column]
            for column in columns
            if column in filters_by_column
            and filters_by_column[column].source != atom.predicate
        )
        stages.append(
            JoinStage(
                scan,
                join,
                filters,
                f"join:{atom.predicate}",
                scan_filters=stage_scan_filters,
                bound=stage_bounds[position],
            )
        )
        prev_columns = stage_columns

    # Queries with no positive atoms still must apply constant-only
    # subgoals (safety allows e.g. `answer(1) :- 1 < 2`).
    unit_filters = attach_bound_filters(prev_columns)
    if pending_comparisons or pending_negations:
        left = pending_comparisons + pending_negations
        raise EvaluationError(
            f"subgoals never became bound: {[str(s) for s in left]} "
            "(query should have failed the safety check)"
        )

    root = _lower_materialize(
        query, output_terms, output_columns, bound, name=query.head_name
    )
    plan = PhysicalPlan(
        query=query,
        order_strategy=strategy_label,
        order=tuple(order),
        stages=tuple(stages),
        unit_filters=unit_filters,
        root=root,
    )
    _verify_lowered(plan, db)
    return plan


def _verify_lowered(plan, db: Database) -> None:
    """Schema-check a freshly lowered plan when the ambient verification
    switch (``mine(verify_plans=True)``, or the test suite's fixture) is
    on.  This covers every lowering path — static strategies, the naive
    evaluator, and the dynamic re-planner's ``complete_order`` suffixes."""
    from ..analysis.verification import plan_verification_enabled

    if plan_verification_enabled():
        from ..analysis.schema import assert_physical_plan

        assert_physical_plan(plan, db=db)


def _lower_materialize(
    query: ConjunctiveQuery,
    output_terms: Sequence[Term] | None,
    output_columns: Sequence[str] | None,
    bound: set[str],
    name: str,
) -> Materialize:
    terms = tuple(
        output_terms if output_terms is not None else query.head_terms
    )
    labels: list[str] = []
    for i, term in enumerate(terms):
        if is_bindable(term):
            column = term_column(term)
            if column not in bound:
                raise EvaluationError(
                    f"output term {term} is not bound by any positive subgoal"
                )
            labels.append(column)
        else:
            labels.append(f"_const{i}")
    if output_columns is not None:
        if len(output_columns) != len(terms):
            raise EvaluationError(
                f"output_columns has {len(output_columns)} names for "
                f"{len(terms)} output terms"
            )
        labels = list(output_columns)
    return Materialize(name=name, output_terms=terms, columns=tuple(labels))


def complete_order(
    db: Database,
    positives: Sequence[RelationalAtom],
    prefix: Sequence[int],
    current_size: int,
) -> list[int]:
    """Re-plan the join order for the subgoals not yet joined.

    Used by the dynamic strategy's runtime re-planning (Section 4.4):
    when the observed size of the running result diverges from the
    plan's estimate, the remaining stages are re-ordered greedily from
    the *observed* size, keeping the already-executed ``prefix``
    (avoiding cartesian products until forced, like the initial order).
    """
    bound: set[str] = set()
    for idx in prefix:
        bound |= set(scan_columns(positives[idx]))
    remaining = [i for i in range(len(positives)) if i not in set(prefix)]
    order = list(prefix)
    size = float(max(current_size, 1))
    while remaining:
        stats = {i: db.stats(positives[i].predicate) for i in remaining}

        def growth(i: int) -> float:
            columns = scan_columns(positives[i])
            shared = sorted(bound & set(columns))
            estimate = size * stats[i].cardinality
            for shared_column in shared:
                base_column = _column_for(db, positives[i], shared_column)
                estimate /= max(stats[i].distinct_count(base_column), 1)
            return estimate

        connected = [
            i for i in remaining if bound & set(scan_columns(positives[i]))
        ]
        pool = connected or remaining
        if connected:
            pick = min(pool, key=lambda i: (growth(i), stats[i].cardinality))
        else:
            pick = min(pool, key=lambda i: stats[i].cardinality)
        order.append(pick)
        remaining.remove(pick)
        bound |= set(scan_columns(positives[pick]))
        size = growth(pick)
    return order


def lower_step(
    db: Database,
    rules: Sequence[ConjunctiveQuery],
    output_terms_per_rule: Sequence[Sequence[Term]],
    answer_columns: Sequence[str],
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
    conditions: Sequence[tuple[object, str]],
    result_name: str,
    order_strategy: str = "greedy",
    runtime_filters: Collection[str] | None = None,
) -> StepPlan:
    """Lower one FILTER step: union the rule plans, group by the
    parameter columns, aggregate one column per filter conjunct, apply
    the threshold filter, and materialize the survivors."""
    branches = tuple(
        lower_rule(
            db,
            rule,
            output_terms=terms,
            output_columns=answer_columns,
            order_strategy=order_strategy,
            runtime_filters=runtime_filters,
        )
        for rule, terms in zip(rules, output_terms_per_rule)
    )
    specs = tuple(aggregates)
    group_columns = tuple(group_by) + tuple(spec.column for spec in specs)
    group = GroupAggregate(tuple(group_by), specs, group_columns)
    threshold = ThresholdFilter(tuple(conditions), group_columns)
    root = Materialize(
        name=result_name, output_terms=(), columns=tuple(group_by)
    )
    plan = StepPlan(
        branches=branches,
        union=UnionOp(tuple(answer_columns)),
        answer_columns=tuple(answer_columns),
        group=group,
        threshold=threshold,
        root=root,
    )
    _verify_lowered(plan, db)
    return plan
