"""Morsel-driven parallel execution of partitioned step plans.

One :class:`~repro.engine.ir.StepPlan` fans out into N independent
partition tasks (see :mod:`repro.engine.partition` for the partitioning
scheme and its correctness argument).  Tasks are *morsels*: the
executor cuts each step into more partitions than workers
(``jobs * morsels_per_worker``) and lets the pool's queue balance them,
so a skewed partition does not serialize the run.

Two pools, chosen by the planner's System-R cardinality estimates:

* a ``concurrent.futures`` **process pool** when the step's estimated
  answer size clears :data:`PROCESS_ESTIMATE_THRESHOLD` — real
  parallelism for the join/aggregate work that dominates large steps;
  the pool is created lazily, seeded with the base catalog once via the
  worker initializer, and reused across steps;
* a **thread pool** for small steps, where pickling and fork startup
  would cost more than the work itself.

Guard propagation: thread workers share the parent's guard (deadline,
row caps and cancellation all enforce directly).  Process workers get a
fresh guard built from :meth:`~repro.guard.ExecutionGuard.child_budget`
— the *remaining* wall-clock plus the row caps — while the parent polls
its own guard (including cancellation) between future completions.

Failure policy: a worker abort on budget/cancellation re-raises in the
parent as the matching :class:`~repro.errors.ExecutionAborted` subclass.
Any other worker failure — including a hard worker death
(``BrokenProcessPool``) — degrades gracefully: the step re-runs
serially and the downgrade is recorded for the
:class:`~repro.flocks.mining.MiningReport`.

Determinism: partition hashing is process-independent
(:func:`~repro.engine.partition.stable_hash`) and merges are
canonically sorted, so results are bit-identical to serial execution
for any worker count.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from ..errors import BudgetExceededError, ExecutionAborted, ExecutionCancelled
from ..guard import ExecutionGuard, GuardLike, as_guard
from ..relational.catalog import Database
from ..relational.relation import Relation
from ..testing.faults import WorkerKill, trip
from .ir import PartitionedStepPlan, StepPlan
from .memory import MemoryEngine
from .partition import (
    partition_restrictor,
    partition_rows,
    partition_step,
    step_cost_estimate,
)

#: Estimated answer tuples above which a step is worth a process pool.
PROCESS_ESTIMATE_THRESHOLD = 100_000.0

#: Morsels per worker: finer than the worker count so the pool queue
#: can rebalance skewed partitions.
MORSELS_PER_WORKER = 2

#: Relations smaller than this are not worth partitioned group-filtering
#: (the dynamic strategy's in-flight filters).
MIN_PARTITION_ROWS = 2048


def resolve_jobs(parallelism: Optional[int] = None) -> int:
    """The effective worker count for one ``mine()`` call.

    An explicit ``parallelism`` wins; otherwise the ``REPRO_JOBS``
    environment variable (how CI stresses the whole suite under
    ``--jobs 4`` without touching every call site); otherwise 1.
    """
    if parallelism is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            parallelism = int(raw)
        except ValueError:
            return 1
    return max(1, int(parallelism))


@dataclass
class ParallelStepResult:
    """What one (possibly partitioned) step execution produced.

    ``passed`` carries the survivors *with* aggregate columns and is
    only computed when the caller asked for aggregates (a session sink
    wants them); otherwise workers early-exit-count survivorship only.
    """

    result: Relation
    passed: Optional[Relation]
    answer_tuples: int
    mode: str  # "process" | "thread" | "serial"
    partition_sizes: tuple[int, ...] = ()


def merged_relation(
    name: str, columns: Sequence[str], rows: Iterable[tuple]
) -> Relation:
    """Union partition outputs under a canonical (repr-sorted) row
    order — the Merge operator's contract, and what makes parallel
    output arrays bit-identical to serial ones."""
    ordered = sorted(set(rows), key=repr)
    arrays = (
        [list(column) for column in zip(*ordered)]
        if ordered
        else [[] for _ in columns]
    )
    return Relation.from_columns(
        name, tuple(columns), arrays, count=len(ordered)
    )


# ----------------------------------------------------------------------
# Worker tasks (module-level: process pools must import them by name)
# ----------------------------------------------------------------------

_WORKER_DB: Optional[Database] = None


def _init_worker(db: Database) -> None:
    """Process-pool initializer: seed the worker with the base catalog
    once, instead of pickling it into every task."""
    global _WORKER_DB
    _WORKER_DB = db


def _run_partition(
    db: Database,
    step: StepPlan,
    column: str,
    parts: int,
    index: int,
    need_aggregates: bool,
    guard: Optional[ExecutionGuard],
) -> tuple[int, tuple[str, ...], list[tuple]]:
    """Execute one partition of a step; returns (answer tuples,
    survivor columns, survivor rows)."""
    engine = MemoryEngine(
        db,
        guard=guard,
        scan_restrict=partition_restrictor(column, parts, index),
    )
    answer = engine.run_answer(step)
    if need_aggregates:
        passed = engine.run_group_filter(answer, step)
    else:
        passed = engine.run_survivors(answer, step)
    return len(answer), passed.columns, list(passed.tuples)


def _process_partition(args: tuple) -> tuple:
    """One partition task in a pool worker process.

    Exceptions do not cross the process boundary as exceptions: guard
    aborts come back as tagged payloads (custom exception classes with
    keyword-only constructors do not round-trip through pickle), and
    an injected :class:`WorkerKill` dies for real via ``os._exit`` so
    the parent observes a broken pool.
    """
    step, extras, column, parts, index, need_aggregates, budget = args
    try:
        trip("parallel.worker")
        db = _WORKER_DB
        assert db is not None  # initializer ran before any task
        if extras:
            db = db.scratch()
            for relation in extras:
                db.add(relation)
        guard = budget.start() if budget is not None else None
        count, columns, rows = _run_partition(
            db, step, column, parts, index, need_aggregates, guard
        )
        return ("ok", count, columns, rows)
    except WorkerKill:
        os._exit(17)
    except ExecutionCancelled as error:
        return ("cancelled", str(error))
    except BudgetExceededError as error:
        return ("budget", str(error), error.limit)


def _thread_partition(
    db: Database,
    step: StepPlan,
    column: str,
    parts: int,
    index: int,
    need_aggregates: bool,
    guard: Optional[ExecutionGuard],
) -> tuple:
    """One partition task on the thread pool (shares the parent guard;
    aborts and injected kills propagate as exceptions)."""
    trip("parallel.worker")
    count, columns, rows = _run_partition(
        db, step, column, parts, index, need_aggregates, guard
    )
    return ("ok", count, columns, rows)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------


class ParallelExecutor:
    """Runs partitioned step plans on a worker pool; one per ``mine()``
    call, shared by every step of the evaluation.

    Args:
        jobs: worker count; 1 disables partitioning entirely.
        db: the base catalog (what the process pool is seeded with;
            per-step scratch overlays ship only their extra relations).
        guard: the parent evaluation's guard.
        mode: ``"auto"`` (estimate-driven), ``"process"`` or
            ``"thread"`` to force a pool kind.
    """

    def __init__(
        self,
        jobs: int,
        db: Database,
        guard: GuardLike = None,
        mode: str = "auto",
        morsels_per_worker: int = MORSELS_PER_WORKER,
        process_threshold: float = PROCESS_ESTIMATE_THRESHOLD,
        min_partition_rows: int = MIN_PARTITION_ROWS,
    ):
        if mode not in ("auto", "process", "thread"):
            raise ValueError(
                f"unknown parallel mode {mode!r}; "
                "use 'auto', 'process' or 'thread'"
            )
        self.jobs = max(1, int(jobs))
        self.db = db
        self.guard = as_guard(guard)
        self.mode = mode
        self.morsels_per_worker = max(1, morsels_per_worker)
        self.process_threshold = process_threshold
        self.min_partition_rows = min_partition_rows
        #: Reasons this executor fell back to serial execution (worker
        #: crashes); ``mine()`` turns them into MiningReport downgrades.
        self.downgrades: list[str] = []
        #: Whether at least one step actually ran partitioned.
        self.ran_parallel = False
        self.last_mode = "serial"
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def parts(self) -> int:
        """Morsel count per step."""
        return self.jobs * self.morsels_per_worker

    def note_downgrade(self, reason: str) -> None:
        self.downgrades.append(reason)

    # -- step execution -------------------------------------------------

    def run_step(
        self,
        step: StepPlan,
        db: Optional[Database] = None,
        need_aggregates: bool = False,
    ) -> ParallelStepResult:
        """Execute one step plan, partitioned when possible.

        Falls back to serial execution (same engine code, same guard)
        when the step has no partition column, when ``jobs < 2``, or
        when a worker dies — the last case is recorded as a downgrade.
        """
        db = db if db is not None else self.db
        plan = partition_step(step, self.parts, db=db)
        if plan is None or self.jobs < 2:
            return self._run_serial(step, db, need_aggregates)
        started = time.perf_counter()
        use_process = self._pick_process(step)
        try:
            outputs = (
                self._run_process(plan, db, need_aggregates)
                if use_process
                else self._run_threads(plan, db, need_aggregates)
            )
        except ExecutionAborted:
            raise
        except (Exception, WorkerKill) as error:
            if isinstance(error, BrokenProcessPool):
                self.close()  # the pool is dead; later steps rebuild it
            detail = f"{type(error).__name__}: {error}".rstrip(": ")
            self.note_downgrade(
                f"worker failure ({detail}); step "
                f"{step.result_name!r} re-ran serially"
            )
            return self._run_serial(step, db, need_aggregates)
        self.ran_parallel = True
        self.last_mode = "process" if use_process else "thread"
        return self._merge(
            plan, outputs, need_aggregates, self.last_mode,
            time.perf_counter() - started,
        )

    def _pick_process(self, step: StepPlan) -> bool:
        if self.mode == "process":
            return True
        if self.mode == "thread":
            return False
        return step_cost_estimate(step) >= self.process_threshold

    def _run_serial(
        self, step: StepPlan, db: Database, need_aggregates: bool
    ) -> ParallelStepResult:
        engine = MemoryEngine(db, guard=self.guard)
        answer = engine.run_answer(step)
        if need_aggregates:
            passed: Optional[Relation] = engine.run_group_filter(answer, step)
            result = engine.finalize_step(passed, step)
        else:
            passed = None
            result = engine.run_survivors(answer, step)
        return ParallelStepResult(
            result=result,
            passed=passed,
            answer_tuples=len(answer),
            mode="serial",
        )

    def _run_process(
        self, plan: PartitionedStepPlan, db: Database, need_aggregates: bool
    ) -> list[tuple]:
        pool = self._ensure_pool()
        extras = self._extra_relations(db)
        budget = self.guard.child_budget() if self.guard is not None else None
        parts = plan.partition.parts
        futures = [
            pool.submit(
                _process_partition,
                (
                    plan.step, extras, plan.partition.column, parts, index,
                    need_aggregates, budget,
                ),
            )
            for index in range(parts)
        ]
        payloads = self._collect(futures)
        outputs: list[tuple] = []
        for payload in payloads:
            tag = payload[0]
            if tag == "ok":
                outputs.append(payload[1:])
            elif tag == "cancelled":
                raise ExecutionCancelled(
                    payload[1], trace=self._trace(), node="parallel worker"
                )
            elif tag == "budget":
                raise BudgetExceededError(
                    payload[1],
                    trace=self._trace(),
                    node="parallel worker",
                    limit=payload[2],
                )
        return outputs

    def _run_threads(
        self, plan: PartitionedStepPlan, db: Database, need_aggregates: bool
    ) -> list[tuple]:
        parts = plan.partition.parts
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = [
                pool.submit(
                    _thread_partition,
                    db, plan.step, plan.partition.column, parts, index,
                    need_aggregates, self.guard,
                )
                for index in range(parts)
            ]
            payloads = self._collect(futures)
        return [payload[1:] for payload in payloads]

    def _collect(self, futures: list[Future]) -> list:
        """Await every future (submit order), polling the parent guard —
        cancellation and the deadline stay live while workers run."""
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(
                    pending,
                    timeout=0.05 if self.guard is not None else None,
                    return_when=FIRST_COMPLETED,
                )
                if self.guard is not None:
                    self.guard.checkpoint(node="parallel wait")
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            raise

    def _merge(
        self,
        plan: PartitionedStepPlan,
        outputs: list[tuple],
        need_aggregates: bool,
        mode: str,
        seconds: float,
    ) -> ParallelStepResult:
        step = plan.step
        sizes = tuple(count for count, _columns, _rows in outputs)
        answer_tuples = sum(sizes)
        rows: list[tuple] = []
        columns: tuple[str, ...] = step.root.columns
        for _count, part_columns, part_rows in outputs:
            columns = tuple(part_columns)
            rows.extend(part_rows)
        if need_aggregates:
            passed: Optional[Relation] = merged_relation(
                step.root.name, columns, rows
            )
            positions = [columns.index(c) for c in step.root.columns]
            result = merged_relation(
                step.root.name,
                step.root.columns,
                [tuple(row[p] for p in positions) for row in rows],
            )
        else:
            passed = None
            result = merged_relation(step.root.name, step.root.columns, rows)
        if self.guard is not None:
            self.guard.note_step(
                name=f"parallel:{step.result_name}",
                description=(
                    f"{mode} pool, {plan.partition.parts} partitions "
                    f"on {plan.partition.column}"
                ),
                input_tuples=answer_tuples,
                output_assignments=len(result),
                seconds=seconds,
                filtered=True,
            )
            self.guard.checkpoint(
                rows=len(result), node=f"parallel:{step.result_name}"
            )
        return ParallelStepResult(
            result=result,
            passed=passed,
            answer_tuples=answer_tuples,
            mode=mode,
            partition_sizes=sizes,
        )

    # -- in-flight group filtering (the dynamic strategy) ---------------

    def group_filter_parallel(
        self,
        relation: Relation,
        group_by: Sequence[str],
        aggregates: Sequence,
        conditions: Sequence[tuple],
        name: str = "ok",
    ) -> Optional[tuple[Relation, tuple[int, ...]]]:
        """Partition an already-materialized relation on its first group
        key and group-filter the partitions concurrently.

        Returns ``(passed, partition sizes)`` — the sizes are what the
        dynamic re-planner observes — or ``None`` when partitioning is
        not worthwhile (small input, no usable key, or ``jobs < 2``);
        a worker failure also returns ``None`` (the caller's serial
        path is the degradation) after recording the downgrade.
        """
        if self.jobs < 2 or not group_by:
            return None
        if len(relation) < self.min_partition_rows:
            return None
        column = group_by[0]
        if column not in relation.columns:
            return None
        slices = partition_rows(relation, column, self.parts)

        def task(part: Relation) -> Relation:
            trip("parallel.worker")
            engine = MemoryEngine(self.db, guard=self.guard)
            return engine.group_filter(
                part, list(group_by), aggregates, conditions, name=name
            )

        try:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                futures = [pool.submit(task, part) for part in slices]
                results = self._collect(futures)
        except ExecutionAborted:
            raise
        except (Exception, WorkerKill) as error:
            detail = f"{type(error).__name__}: {error}".rstrip(": ")
            self.note_downgrade(
                f"worker failure ({detail}); in-flight filter at "
                f"{name!r} re-ran serially"
            )
            return None
        rows: list[tuple] = []
        for part_passed in results:
            rows.extend(part_passed.tuples)
        passed = merged_relation(name, results[0].columns, rows)
        self.ran_parallel = True
        self.last_mode = "thread"
        return passed, tuple(len(part) for part in slices)

    # -- plumbing -------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self.db,),
            )
        return self._pool

    def _extra_relations(self, db: Database) -> tuple[Relation, ...]:
        """Relations in a scratch overlay the pool's seeded catalog does
        not have (materialized ok-tables) — shipped per task."""
        if db is self.db:
            return ()
        extras = []
        for name in db.names():
            relation = db.get(name)
            if name not in self.db or self.db.get(name) is not relation:
                extras.append(relation)
        return tuple(extras)

    def _trace(self) -> Any:
        return self.guard.trace if self.guard is not None else None


__all__ = [
    "MORSELS_PER_WORKER",
    "MIN_PARTITION_ROWS",
    "PROCESS_ESTIMATE_THRESHOLD",
    "ParallelExecutor",
    "ParallelStepResult",
    "BrokenProcessPool",
    "merged_relation",
    "resolve_jobs",
]
