"""Morsel-driven parallel execution of partitioned step plans.

One :class:`~repro.engine.ir.StepPlan` fans out into N independent
partition tasks (see :mod:`repro.engine.partition` for the partitioning
scheme and its correctness argument).  Tasks are *morsels*: the
executor cuts each step into more partitions than workers
(``jobs * morsels_per_worker``) and lets the pool's queue balance them,
so a skewed partition does not serialize the run.

Two pools, chosen by the planner's System-R cardinality estimates:

* a ``concurrent.futures`` **process pool** when the step's estimated
  answer size clears :data:`PROCESS_ESTIMATE_THRESHOLD` — real
  parallelism for the join/aggregate work that dominates large steps;
  the pool is created lazily and reused across steps.  Workers are
  seeded through **shared memory** (:mod:`repro.engine.shm`): the
  parent publishes the encoded catalog's flat ``int64`` code columns
  into one segment and ships only a descriptor (segment name, value
  dictionary snapshot, per-relation offsets); each worker attaches and
  slices its columns out of the mapping — no row pickling in either
  direction.  Survivors travel back the same way: a partition whose
  codes stay inside the seeded dictionary prefix returns flat code
  buffers the parent decodes against its own dictionary.  When shared
  memory is unavailable the seeding degrades to the pickled catalog.
* a **thread pool** for small steps, where pickling and fork startup
  would cost more than the work itself.

Guard propagation: thread workers share the parent's guard (deadline,
row caps and cancellation all enforce directly).  Process workers get a
fresh guard built from :meth:`~repro.guard.ExecutionGuard.child_budget`
— the *remaining* wall-clock plus the row caps — while the parent polls
its own guard (including cancellation) between future completions.

Failure policy (the parallel rungs of the recovery ladder): a worker
abort on budget/cancellation re-raises in the parent as the matching
:class:`~repro.errors.ExecutionAborted` subclass.  Any other worker
failure degrades gracefully, *narrowly first*: when only some morsels
of a step failed, just those partitions re-run serially in the parent
(the survivors' outputs are kept); when every morsel failed — or the
pool itself broke (``BrokenProcessPool``) — the whole step re-runs
serially.  Either way the downgrade is recorded for the
:class:`~repro.flocks.mining.MiningReport`.

Hung workers: when the parent guard has a wall-clock deadline (or an
explicit ``watchdog`` interval is configured), a **watchdog** bounds
how long the parent waits on a step's morsels — the allowance is a
fraction of the guard's *remaining* budget, so a stalled worker can
never silently eat the whole deadline.  Overdue morsels are cancelled
(abandoned, for tasks already running — neither pool kind can preempt
them) and re-executed serially in the parent, recorded both as a
watchdog event and a downgrade.  The ``parallel.hang`` fault site (an
injected sleep via :func:`~repro.testing.faults.maybe_hang`) makes the
stall deterministic in tests.

Determinism: partition hashing is process-independent
(:func:`~repro.engine.partition.stable_hash`) and merges are
canonically sorted, so results are bit-identical to serial execution
for any worker count.
"""

# conlint: hot-module — loops here are engine kernels; the
# cancellation-responsiveness pass requires each hot loop to poll
# the execution guard (see docs/CONCURRENCY.md).

from __future__ import annotations

import os
import time
from array import array
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from ..errors import ExecutionAborted, HungWorkerError
from ..guard import ExecutionGuard, GuardLike, as_guard
from ..relational.catalog import Database
from ..relational.dictionary import ValueDictionary
from ..relational.relation import CODE_BYTES, Relation
from ..testing.faults import WorkerKill, maybe_hang, trip
from . import shm
from .ir import PartitionedStepPlan, StepPlan
from .memory import MemoryEngine
from .partition import (
    partition_restrictor,
    partition_rows,
    partition_step,
    step_cost_estimate,
)

#: Estimated answer tuples above which a step is worth a process pool.
PROCESS_ESTIMATE_THRESHOLD = 100_000.0

#: Morsels per worker: finer than the worker count so the pool queue
#: can rebalance skewed partitions.
MORSELS_PER_WORKER = 2

#: Relations smaller than this are not worth partitioned group-filtering
#: (the dynamic strategy's in-flight filters).
MIN_PARTITION_ROWS = 2048

#: Fraction of the guard's *remaining* wall-clock one step's morsels may
#: consume before the watchdog declares them hung.  Half: a stalled step
#: must leave enough budget for its serial salvage re-run.
WATCHDOG_FRACTION = 0.5

#: Smallest watchdog allowance — below this, normal pool latency would
#: trip the watchdog on perfectly healthy morsels.
WATCHDOG_FLOOR = 0.05


def resolve_jobs(parallelism: Optional[int] = None) -> int:
    """The effective worker count for one ``mine()`` call.

    An explicit ``parallelism`` wins; otherwise the ``REPRO_JOBS``
    environment variable (how CI stresses the whole suite under
    ``--jobs 4`` without touching every call site); otherwise 1.
    """
    if parallelism is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            parallelism = int(raw)
        except ValueError:
            return 1
    return max(1, int(parallelism))


def clamp_default_jobs(jobs: int) -> tuple[int, Optional[str]]:
    """Clamp a *defaulted* worker count to the machine's CPU count.

    Applies only to the env/default resolution path (``REPRO_JOBS``):
    oversubscribing beyond the core count buys nothing for CPU-bound
    join work and multiplies pool seeding cost, so a CI matrix that
    exports ``REPRO_JOBS=64`` onto a 4-core runner is quietly capped.
    An *explicit* ``parallelism=`` argument is never clamped — the
    caller asked for that worker count and gets it.

    Returns ``(effective jobs, reason)`` where ``reason`` is ``None``
    when no clamping happened (including when the CPU count is
    unknowable).
    """
    cores = os.cpu_count()
    if cores is None or jobs <= cores:
        return jobs, None
    return cores, (
        f"defaulted parallelism {jobs} exceeds the {cores} available "
        f"CPU core(s); clamped to {cores}"
    )


@dataclass
class ParallelStepResult:
    """What one (possibly partitioned) step execution produced.

    ``passed`` carries the survivors *with* aggregate columns and is
    only computed when the caller asked for aggregates (a session sink
    wants them); otherwise workers early-exit-count survivorship only.
    """

    result: Relation
    passed: Optional[Relation]
    answer_tuples: int
    mode: str  # "process" | "thread" | "serial"
    partition_sizes: tuple[int, ...] = ()


def merged_relation(
    name: str, columns: Sequence[str], rows: Iterable[tuple]
) -> Relation:
    """Union partition outputs under a canonical (repr-sorted) row
    order — the Merge operator's contract, and what makes parallel
    output arrays bit-identical to serial ones."""
    ordered = sorted(set(rows), key=repr)
    arrays = (
        [list(column) for column in zip(*ordered)]
        if ordered
        else [[] for _ in columns]
    )
    return Relation.from_columns(
        name, tuple(columns), arrays, count=len(ordered)
    )


# ----------------------------------------------------------------------
# Worker tasks (module-level: process pools must import them by name)
# ----------------------------------------------------------------------

_WORKER_DB: Optional[Database] = None
_WORKER_SEED_CODES: Optional[int] = None


def _init_worker(seed: tuple[str, Any]) -> None:
    """Process-pool initializer: seed the worker with the base catalog
    once, instead of pickling it into every task.

    ``seed`` is either ``("shm", descriptor)`` — attach the parent's
    shared-memory segment and slice the encoded catalog out of it
    (:func:`repro.engine.shm.attach`; no row data was pickled) — or
    ``("db", database)``, the pickled-catalog fallback for platforms
    without shared memory.  Either way the worker records the seeded
    dictionary prefix size: codes below it decode identically in the
    parent, which is what lets results travel back as flat buffers.
    """
    global _WORKER_DB, _WORKER_SEED_CODES
    kind, payload = seed
    if kind == "shm":
        db = shm.attach(payload)
        if db is None:  # pragma: no cover - segment vanished
            raise RuntimeError("worker could not attach the shared catalog")
    else:
        db = payload
    _WORKER_DB = db
    _WORKER_SEED_CODES = db.dictionary.snapshot_size()


def _run_partition(
    db: Database,
    step: StepPlan,
    column: str,
    parts: int,
    index: int,
    need_aggregates: bool,
    guard: Optional[ExecutionGuard],
) -> tuple[int, Relation]:
    """Execute one partition of a step; returns (answer tuples,
    survivor relation)."""
    engine = MemoryEngine(
        db,
        guard=guard,
        scan_restrict=partition_restrictor(column, parts, index),
    )
    answer = engine.run_answer(step)
    if need_aggregates:
        passed = engine.run_group_filter(answer, step)
    else:
        passed = engine.run_survivors(answer, step)
    return len(answer), passed


def _pack_survivors(passed: Relation, seed_codes: Optional[int]) -> tuple:
    """Wire-pack one partition's survivors for the trip to the parent.

    When the survivors are encoded and every code falls inside the
    seeded dictionary prefix, ship flat ``int64`` buffers — append-only
    interning guarantees the parent's dictionary decodes them to the
    same values, so no Python objects are pickled.  Rows carrying
    worker-locally interned values (codes at or past the prefix) fall
    back to plain value tuples.
    """
    if (
        seed_codes is not None
        and passed.is_encoded
        and all(
            max(codes, default=-1) < seed_codes
            for codes in passed.code_columns()
        )
    ):
        buffers = tuple(
            array("q", codes).tobytes() for codes in passed.code_columns()
        )
        return ("codes", passed.columns, buffers, len(passed))
    return ("rows", passed.columns, list(passed.tuples), len(passed))


def _unpack_survivors(
    payload: tuple, dictionary: ValueDictionary
) -> tuple[tuple[str, ...], list[tuple]]:
    """Invert :func:`_pack_survivors` against the parent's dictionary."""
    kind, columns, data, count = payload
    if kind == "codes":
        decoded = [dictionary.decode_column(array("q", buf)) for buf in data]
        rows = list(zip(*decoded)) if decoded else [()] * count
        return tuple(columns), rows
    return tuple(columns), data


def _process_partition(args: tuple) -> tuple:
    """One partition task in a pool worker process.

    Guard aborts cross back to the parent as real exceptions — every
    :class:`~repro.errors.ReproError` pickles faithfully (traces are
    dropped in transit; the parent re-attaches its own).  An injected
    :class:`WorkerKill` still dies for real via ``os._exit`` so the
    parent observes a broken pool.
    """
    step, extras, column, parts, index, need_aggregates, budget = args
    try:
        trip("parallel.worker")
        maybe_hang("parallel.hang")
        db = _WORKER_DB
        assert db is not None  # initializer ran before any task
        if extras:
            db = db.scratch()
            for relation in extras:
                db.add(relation)
        guard = budget.start() if budget is not None else None
        count, passed = _run_partition(
            db, step, column, parts, index, need_aggregates, guard
        )
        return (count, _pack_survivors(passed, _WORKER_SEED_CODES))
    except WorkerKill:
        os._exit(17)


def _thread_partition(
    db: Database,
    step: StepPlan,
    column: str,
    parts: int,
    index: int,
    need_aggregates: bool,
    guard: Optional[ExecutionGuard],
) -> tuple[int, Relation]:
    """One partition task on the thread pool (shares the parent guard
    and address space; the survivor relation is returned as-is and
    aborts and injected kills propagate as exceptions)."""
    trip("parallel.worker")
    maybe_hang("parallel.hang")
    return _run_partition(
        db, step, column, parts, index, need_aggregates, guard
    )


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------


class ParallelExecutor:
    """Runs partitioned step plans on a worker pool; one per ``mine()``
    call, shared by every step of the evaluation.

    Args:
        jobs: worker count; 1 disables partitioning entirely.
        db: the base catalog (what the process pool is seeded with;
            per-step scratch overlays ship only their extra relations).
        guard: the parent evaluation's guard.
        mode: ``"auto"`` (estimate-driven), ``"process"`` or
            ``"thread"`` to force a pool kind.
        watchdog: explicit per-step watchdog allowance in seconds.
            ``None`` (the default) derives the allowance from the
            guard's remaining wall-clock (``WATCHDOG_FRACTION`` of it,
            floored at ``WATCHDOG_FLOOR``); with no guard deadline the
            watchdog is off — an unbounded run has no budget a hung
            worker could waste.
    """

    def __init__(
        self,
        jobs: int,
        db: Database,
        guard: GuardLike = None,
        mode: str = "auto",
        morsels_per_worker: int = MORSELS_PER_WORKER,
        process_threshold: float = PROCESS_ESTIMATE_THRESHOLD,
        min_partition_rows: int = MIN_PARTITION_ROWS,
        watchdog: Optional[float] = None,
    ):
        if mode not in ("auto", "process", "thread"):
            raise ValueError(
                f"unknown parallel mode {mode!r}; "
                "use 'auto', 'process' or 'thread'"
            )
        self.jobs = max(1, int(jobs))
        self.db = db
        self.guard = as_guard(guard)
        self.mode = mode
        self.morsels_per_worker = max(1, morsels_per_worker)
        self.process_threshold = process_threshold
        self.min_partition_rows = min_partition_rows
        self.watchdog = watchdog
        #: Reasons this executor fell back to serial execution (worker
        #: crashes); ``mine()`` turns them into MiningReport downgrades.
        self.downgrades: list[str] = []
        #: Watchdog firings (overdue morsels detected); ``mine()`` turns
        #: them into ``kind="watchdog"`` downgrades.
        self.watchdog_events: list[str] = []
        #: Whether at least one step actually ran partitioned.
        self.ran_parallel = False
        self.last_mode = "serial"
        #: Largest single-partition footprint seen (encoded bytes of the
        #: biggest morsel's answer); surfaces in the MiningReport.
        self.peak_partition_bytes = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._shared: Optional[shm.SharedCatalog] = None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._shared is not None:
            self._shared.close()
            self._shared = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def parts(self) -> int:
        """Morsel count per step."""
        return self.jobs * self.morsels_per_worker

    def note_downgrade(self, reason: str) -> None:
        self.downgrades.append(reason)

    # -- step execution -------------------------------------------------

    def run_step(
        self,
        step: StepPlan,
        db: Optional[Database] = None,
        need_aggregates: bool = False,
    ) -> ParallelStepResult:
        """Execute one step plan, partitioned when possible.

        Falls back to serial execution (same engine code, same guard)
        when the step has no partition column, when ``jobs < 2``, or
        when every morsel of the step failed or hung — the last cases
        are recorded as downgrades.  When only *some* morsels fail or
        hang, just those partitions re-run serially in the parent and
        the healthy outputs are kept.
        """
        db = db if db is not None else self.db
        plan = partition_step(step, self.parts, db=db)
        if plan is None or self.jobs < 2:
            return self._run_serial(step, db, need_aggregates)
        started = time.perf_counter()
        use_process = self._pick_process(step)
        try:
            outcomes = (
                self._run_process(plan, db, need_aggregates)
                if use_process
                else self._run_threads(plan, db, need_aggregates)
            )
            outputs = self._resolve(plan, db, need_aggregates, outcomes)
        except ExecutionAborted:
            raise
        except (Exception, WorkerKill) as error:
            if isinstance(error, (BrokenProcessPool, HungWorkerError)):
                # A broken pool is dead; a pool with every worker hung
                # is as good as dead — abandon it, later steps rebuild.
                if use_process:
                    self.close()
            detail = f"{type(error).__name__}: {error}".rstrip(": ")
            self.note_downgrade(
                f"worker failure ({detail}); step "
                f"{step.result_name!r} re-ran serially"
            )
            return self._run_serial(step, db, need_aggregates)
        self.ran_parallel = True
        self.last_mode = "process" if use_process else "thread"
        return self._merge(
            plan, outputs, need_aggregates, self.last_mode,
            time.perf_counter() - started,
        )

    def _pick_process(self, step: StepPlan) -> bool:
        if self.mode == "process":
            return True
        if self.mode == "thread":
            return False
        return step_cost_estimate(step) >= self.process_threshold

    def _run_serial(
        self, step: StepPlan, db: Database, need_aggregates: bool
    ) -> ParallelStepResult:
        engine = MemoryEngine(db, guard=self.guard)
        answer = engine.run_answer(step)
        if need_aggregates:
            passed: Optional[Relation] = engine.run_group_filter(answer, step)
            result = engine.finalize_step(passed, step)
        else:
            passed = None
            result = engine.run_survivors(answer, step)
        return ParallelStepResult(
            result=result,
            passed=passed,
            answer_tuples=len(answer),
            mode="serial",
        )

    def _run_process(
        self, plan: PartitionedStepPlan, db: Database, need_aggregates: bool
    ) -> list[tuple[str, Any]]:
        pool = self._ensure_pool()
        extras = self._extra_relations(db)
        budget = self.guard.child_budget() if self.guard is not None else None
        parts = plan.partition.parts
        futures = [
            pool.submit(
                _process_partition,
                (
                    plan.step, extras, plan.partition.column, parts, index,
                    need_aggregates, budget,
                ),
            )
            for index in range(parts)
        ]
        outcomes = self._collect(futures)
        if any(status == "hung" for status, _ in outcomes):
            # A hung process worker keeps squatting on its pool slot
            # even after we abandon its future; rebuild the pool so the
            # remaining steps get their full worker count back.
            self.close()
        return outcomes

    def _run_threads(
        self, plan: PartitionedStepPlan, db: Database, need_aggregates: bool
    ) -> list[tuple[str, Any]]:
        parts = plan.partition.parts
        # Not a ``with`` block: the context manager's shutdown waits for
        # every task, which would stall the parent behind the very hung
        # worker the watchdog just abandoned.
        pool = ThreadPoolExecutor(max_workers=self.jobs)
        try:
            futures = [
                pool.submit(
                    _thread_partition,
                    db, plan.step, plan.partition.column, parts, index,
                    need_aggregates, self.guard,
                )
                for index in range(parts)
            ]
            return self._collect(futures)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _morsel_deadline(self) -> Optional[float]:
        """How long this step's morsels may run before the watchdog
        declares the laggards hung; ``None`` disables the watchdog."""
        if self.watchdog is not None:
            return max(WATCHDOG_FLOOR, self.watchdog)
        if self.guard is None:
            return None
        remaining = self.guard.remaining_seconds
        if remaining is None:
            return None
        return max(WATCHDOG_FLOOR, remaining * WATCHDOG_FRACTION)

    def _collect(
        self, futures: list[Future]
    ) -> list[tuple[str, Any]]:
        """Await every future, polling the parent guard — cancellation
        and the deadline stay live while workers run.

        Returns one outcome per future, in submit order: ``("ok",
        payload)``, ``("failed", error)``, or ``("hung", None)`` when
        the watchdog gave up on a morsel that had not finished within
        the step's allowance.  Guard aborts raise immediately.
        """
        allowance = self._morsel_deadline()
        started = time.monotonic()
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(
                    pending,
                    timeout=(
                        0.05
                        if self.guard is not None or allowance is not None
                        else None
                    ),
                    return_when=FIRST_COMPLETED,
                )
                if self.guard is not None:
                    self.guard.checkpoint(node="parallel wait")
                if (
                    allowance is not None
                    and pending
                    and time.monotonic() - started >= allowance
                ):
                    for future in pending:
                        future.cancel()
                    break
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        outcomes: list[tuple[str, Any]] = []
        for future in futures:
            if future in pending or future.cancelled():
                outcomes.append(("hung", None))
                continue
            error = future.exception()
            if error is not None:
                outcomes.append(("failed", error))
            else:
                outcomes.append(("ok", future.result()))
        return outcomes

    def _resolve(
        self,
        plan: PartitionedStepPlan,
        db: Database,
        need_aggregates: bool,
        outcomes: list[tuple[str, Any]],
    ) -> list[tuple]:
        """Turn per-morsel outcomes into partition outputs, salvaging
        failed/hung morsels by re-running just them serially.

        Worker-side guard aborts re-raise as the matching
        :class:`~repro.errors.ExecutionAborted` subclass.  When *every*
        morsel misbehaved there is nothing to salvage around — the
        first error (or a :class:`~repro.errors.HungWorkerError` when
        all hung) propagates so ``run_step`` takes the full-serial
        rung instead.
        """
        step = plan.step
        dictionary = self.db.dictionary
        outputs: list[Optional[tuple]] = [None] * len(outcomes)
        salvage: list[tuple[int, str, Optional[BaseException]]] = []
        hung = 0
        for index, (status, payload) in enumerate(outcomes):
            if status == "ok":
                count, survivors = payload
                if isinstance(survivors, Relation):  # thread worker
                    columns, rows = survivors.columns, list(survivors.tuples)
                else:  # process worker: wire-packed
                    columns, rows = _unpack_survivors(survivors, dictionary)
                outputs[index] = (count, columns, rows)
            else:
                if status == "failed" and isinstance(
                    payload, ExecutionAborted
                ):
                    # An abort is the *evaluation's* abort, not a worker
                    # fault.  Thread workers share the parent guard;
                    # process workers now raise across the pool boundary
                    # (their trace was dropped in transit — attach ours).
                    if payload.trace is None:
                        payload.trace = self._trace()
                    raise payload
                if status == "hung":
                    hung += 1
                salvage.append((index, status, payload))
        if hung:
            allowance = self._morsel_deadline()
            detail = (
                f" after {allowance:.2f}s allowance"
                if allowance is not None
                else ""
            )
            self.watchdog_events.append(
                f"watchdog: {hung} of {len(outcomes)} morsel(s) of step "
                f"{step.result_name!r} overdue{detail}; "
                "cancelled and re-run serially"
            )
        if not salvage:
            return [output for output in outputs if output is not None]
        if len(salvage) == len(outcomes):
            if hung == len(outcomes):
                raise HungWorkerError(
                    f"all {hung} morsel(s) of step {step.result_name!r} "
                    "hung past the watchdog allowance",
                    pending=hung,
                )
            first_error = next(
                error for _idx, status, error in salvage
                if status == "failed" and error is not None
            )
            raise first_error
        for index, _status, _error in salvage:
            count, passed = _run_partition(
                db,
                step,
                plan.partition.column,
                plan.partition.parts,
                index,
                need_aggregates,
                self.guard,
            )
            outputs[index] = (count, passed.columns, list(passed.tuples))
        details = sorted(
            {
                "hung" if status == "hung"
                else f"{type(error).__name__}: {error}".rstrip(": ")
                for _idx, status, error in salvage
            }
        )
        self.note_downgrade(
            f"{len(salvage)} of {len(outcomes)} partition(s) of step "
            f"{step.result_name!r} re-ran serially "
            f"({'; '.join(details)})"
        )
        return [output for output in outputs if output is not None]

    def _merge(
        self,
        plan: PartitionedStepPlan,
        outputs: list[tuple],
        need_aggregates: bool,
        mode: str,
        seconds: float,
    ) -> ParallelStepResult:
        step = plan.step
        sizes = tuple(count for count, _columns, _rows in outputs)
        answer_tuples = sum(sizes)
        if sizes:
            self.peak_partition_bytes = max(
                self.peak_partition_bytes,
                max(sizes) * CODE_BYTES * max(1, len(step.answer_columns)),
            )
        rows: list[tuple] = []
        columns: tuple[str, ...] = step.root.columns
        for _count, part_columns, part_rows in outputs:
            columns = tuple(part_columns)
            rows.extend(part_rows)
        if need_aggregates:
            passed: Optional[Relation] = merged_relation(
                step.root.name, columns, rows
            )
            positions = [columns.index(c) for c in step.root.columns]
            result = merged_relation(
                step.root.name,
                step.root.columns,
                [tuple(row[p] for p in positions) for row in rows],
            )
        else:
            passed = None
            result = merged_relation(step.root.name, step.root.columns, rows)
        if self.guard is not None:
            self.guard.note_step(
                name=f"parallel:{step.result_name}",
                description=(
                    f"{mode} pool, {plan.partition.parts} partitions "
                    f"on {plan.partition.column}"
                ),
                input_tuples=answer_tuples,
                output_assignments=len(result),
                seconds=seconds,
                filtered=True,
            )
            self.guard.checkpoint(
                rows=len(result), node=f"parallel:{step.result_name}"
            )
        return ParallelStepResult(
            result=result,
            passed=passed,
            answer_tuples=answer_tuples,
            mode=mode,
            partition_sizes=sizes,
        )

    # -- in-flight group filtering (the dynamic strategy) ---------------

    def group_filter_parallel(
        self,
        relation: Relation,
        group_by: Sequence[str],
        aggregates: Sequence,
        conditions: Sequence[tuple],
        name: str = "ok",
    ) -> Optional[tuple[Relation, tuple[int, ...]]]:
        """Partition an already-materialized relation on its first group
        key and group-filter the partitions concurrently.

        Returns ``(passed, partition sizes)`` — the sizes are what the
        dynamic re-planner observes — or ``None`` when partitioning is
        not worthwhile (small input, no usable key, or ``jobs < 2``);
        a worker failure also returns ``None`` (the caller's serial
        path is the degradation) after recording the downgrade.
        """
        if self.jobs < 2 or not group_by:
            return None
        if len(relation) < self.min_partition_rows:
            return None
        column = group_by[0]
        if column not in relation.columns:
            return None
        slices = partition_rows(relation, column, self.parts)
        self.peak_partition_bytes = max(
            self.peak_partition_bytes,
            max(len(part) for part in slices)
            * CODE_BYTES
            * max(1, relation.arity),
        )

        def task(part: Relation) -> Relation:
            trip("parallel.worker")
            maybe_hang("parallel.hang")
            engine = MemoryEngine(self.db, guard=self.guard)
            return engine.group_filter(
                part, list(group_by), aggregates, conditions, name=name
            )

        pool = ThreadPoolExecutor(max_workers=self.jobs)
        try:
            futures = [pool.submit(task, part) for part in slices]
            outcomes = self._collect(futures)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        results: list[Relation] = []
        hung = 0
        for status, payload in outcomes:
            if status == "ok":
                results.append(payload)
                continue
            if status == "failed" and isinstance(payload, ExecutionAborted):
                raise payload
            if status == "hung":
                hung += 1
                detail = "hung worker"
            else:
                detail = f"{type(payload).__name__}: {payload}".rstrip(": ")
            if hung:
                self.watchdog_events.append(
                    f"watchdog: in-flight filter at {name!r} had {hung} "
                    "overdue morsel(s); cancelled"
                )
            self.note_downgrade(
                f"worker failure ({detail}); in-flight filter at "
                f"{name!r} re-ran serially"
            )
            return None
        rows: list[tuple] = []
        for part_passed in results:
            rows.extend(part_passed.tuples)
        passed = merged_relation(name, results[0].columns, rows)
        self.ran_parallel = True
        self.last_mode = "thread"
        return passed, tuple(len(part) for part in slices)

    # -- plumbing -------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self._shared is None:
                self._shared = shm.publish(self.db)
            seed: tuple[str, Any] = (
                ("shm", self._shared.descriptor)
                if self._shared is not None
                else ("db", self.db)
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(seed,),
            )
        return self._pool

    def _extra_relations(self, db: Database) -> tuple[Relation, ...]:
        """Relations in a scratch overlay the pool's seeded catalog does
        not have (materialized ok-tables) — shipped per task."""
        if db is self.db:
            return ()
        extras = []
        for name in db.names():
            relation = db.get(name)
            if name not in self.db or self.db.get(name) is not relation:
                extras.append(relation)
        return tuple(extras)

    def _trace(self) -> Any:
        return self.guard.trace if self.guard is not None else None


__all__ = [
    "MORSELS_PER_WORKER",
    "MIN_PARTITION_ROWS",
    "PROCESS_ESTIMATE_THRESHOLD",
    "WATCHDOG_FLOOR",
    "WATCHDOG_FRACTION",
    "ParallelExecutor",
    "ParallelStepResult",
    "BrokenProcessPool",
    "clamp_default_jobs",
    "merged_relation",
    "resolve_jobs",
]
