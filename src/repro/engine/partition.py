"""Hash partitioning of step plans for parallel execution.

The a-priori rewrite makes every FILTER step an independent
scan-join-aggregate over a reduced parameter space — embarrassingly
parallel across partitions of the candidate parameters.  This module
picks the partitioning column, builds the :class:`~repro.engine.ir.Partition`
/ :class:`~repro.engine.ir.Merge` wrapper plan, and restricts binding
relations to one partition.

Correctness argument (why per-partition execution is exact):

* the partition column is a *group key* that every branch binds through
  a positive subgoal, so every answer row carries a value for it;
* restricting each scan whose binding relation contains the column to
  ``stable_hash(v) % parts == index`` keeps precisely the scan rows that
  can contribute to partition ``index``'s answer rows — rows with other
  values cannot join into an answer row of this partition, because the
  column's value flows unchanged from scan to answer (negated subgoals
  are safe too: an anti-join only matches rows agreeing on the shared
  column, which is in this partition);
* each group's key includes the partition column, so a group's answer
  rows land entirely in one partition — per-partition GroupAggregate /
  ThresholdFilter see *complete* groups, and the union of the
  partitions' survivors equals the serial survivors exactly.

Hashing uses :func:`stable_hash` (CRC-32 of ``repr``), NOT the built-in
``hash()``: Python seed-randomizes ``hash()`` per process, which would
assign different partitions in different pool workers.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..datalog.atoms import RelationalAtom
from ..relational.catalog import Database
from ..relational.dictionary import stable_hash
from ..relational.relation import Relation
from .ir import Merge, Partition, PartitionedStepPlan, StepPlan

__all__ = [
    "ScanRestrictor",
    "choose_partition_column",
    "partition_index",
    "partition_restrictor",
    "partition_rows",
    "partition_step",
    "restrict_to_partition",
    "stable_hash",
    "step_cost_estimate",
    "step_cost_bytes",
]

#: A hook restricting a freshly built binding relation to one partition
#: (installed on :class:`~repro.engine.memory.MemoryEngine`).
ScanRestrictor = Callable[[RelationalAtom, Relation], Relation]


def partition_index(value: object, parts: int) -> int:
    """The partition one column value belongs to."""
    return stable_hash(value) % parts


def choose_partition_column(step: StepPlan) -> Optional[str]:
    """The column a step partitions on, or ``None`` when no group key is
    bound by a positive subgoal in every branch (then the step must run
    serially — nothing guarantees disjoint, complete groups)."""
    for column in step.group.group_by:
        if all(
            any(column in stage.scan.columns for stage in branch.stages)
            for branch in step.branches
        ):
            return column
    return None


def partition_step(
    step: StepPlan,
    parts: int,
    column: Optional[str] = None,
    db: Optional[Database] = None,
) -> Optional[PartitionedStepPlan]:
    """Wrap a step plan for ``parts``-way partitioned execution.

    Returns ``None`` when partitioning is impossible (fewer than two
    parts, or no suitable column).  The wrapped plan is schema-checked
    under the ambient verification switch, same as any lowered plan.
    """
    if parts < 2:
        return None
    if column is None:
        column = choose_partition_column(step)
    if column is None:
        return None
    plan = PartitionedStepPlan(
        step=step,
        partition=Partition(column=column, parts=parts),
        merge=Merge(columns=step.root.columns),
    )
    _verify_partitioned(plan, db)
    return plan


def _verify_partitioned(
    plan: PartitionedStepPlan, db: Optional[Database]
) -> None:
    from ..analysis.verification import plan_verification_enabled

    if plan_verification_enabled():
        from ..analysis.schema import assert_physical_plan

        assert_physical_plan(plan, db=db)


def restrict_to_partition(
    relation: Relation, column: str, parts: int, index: int
) -> Relation:
    """The rows of ``relation`` whose ``column`` value hashes into
    partition ``index`` (the relation unchanged when it lacks the
    column)."""
    if column not in relation.columns:
        return relation
    position = relation.column_position(column)
    if relation.is_encoded and relation.dictionary is not None:
        # Per-code partition table: ``repr`` + CRC-32 runs once per
        # *distinct value* (cached on the dictionary), and each row
        # costs one list lookup — bit-identical assignments to the
        # per-row hash below.
        table = relation.dictionary.partition_table(parts)
        codes = relation.code_columns()[position]
        keep = [i for i, c in enumerate(codes) if table[c] == index]
    else:
        values = relation.columns_data()[position]
        keep = [
            i for i, v in enumerate(values)
            if stable_hash(v) % parts == index
        ]
    if len(keep) == len(relation):
        return relation
    return relation.take(keep)


def partition_rows(
    relation: Relation, column: str, parts: int
) -> list[Relation]:
    """Split a materialized relation into ``parts`` slices by the hash
    of ``column`` — every row lands in exactly one slice, and all rows
    of one group (keyed on ``column``) land in the same slice.  Used by
    the parallel executor to group-filter an in-flight relation (the
    dynamic strategy) partition by partition."""
    position = relation.column_position(column)
    buckets: list[list[int]] = [[] for _ in range(parts)]
    if relation.is_encoded and relation.dictionary is not None:
        table = relation.dictionary.partition_table(parts)
        codes = relation.code_columns()[position]
        for i, c in enumerate(codes):
            buckets[table[c]].append(i)
    else:
        values = relation.columns_data()[position]
        for i, v in enumerate(values):
            buckets[stable_hash(v) % parts].append(i)
    return [relation.take(bucket) for bucket in buckets]


def partition_restrictor(column: str, parts: int, index: int) -> ScanRestrictor:
    """A :data:`ScanRestrictor` for one partition task."""

    def restrict(atom: RelationalAtom, relation: Relation) -> Relation:
        return restrict_to_partition(relation, column, parts, index)

    return restrict


def step_cost_estimate(step: StepPlan) -> float:
    """The planner's System-R estimate of a step's answer size — the
    signal the parallel executor uses to pick process- vs thread-pool
    execution (forking and pickling only pay off above a threshold)."""
    total = 0.0
    for branch in step.branches:
        if branch.stages:
            total += float(branch.stages[-1].estimate)
    return total


def step_cost_bytes(step: StepPlan) -> float:
    """Estimated flat-buffer size of a step's answer relation in the
    encoded-column layout: the planner's cardinality estimate times the
    encoded row width (8 bytes per column).  The parallel executor sizes
    its process-vs-thread decision and its shared-memory budget from
    this number."""
    from ..relational.relation import CODE_BYTES

    return step_cost_estimate(step) * CODE_BYTES * len(step.answer_columns)
