"""The physical plan IR: a small DAG of operators shared by every
strategy and backend.

A :class:`PhysicalPlan` is the lowered form of one conjunctive rule: a
linear sequence of :class:`JoinStage` nodes (left-deep, matching the
join orders Section 4 assumes) followed by a :class:`Materialize`
projection.  Each stage bundles the :class:`Scan` of one subgoal's
binding relation, the :class:`HashJoin` against the running result, and
the :class:`CompareFilter` / :class:`AntiJoin` operators that attach as
soon as their terms are bound.  Keeping the stages linearized (rather
than a recursive tree) is deliberate: guard checkpoints, trace rows and
fault-injection trip points fire per stage with exact input/output
sizes, the same instrumentation every strategy previously re-implemented.

A :class:`StepPlan` lowers one ``R(P) := FILTER(P, Q, C)`` step: the
union of its rules' plans, a :class:`GroupAggregate` per filter
conjunct, a :class:`ThresholdFilter`, and a final :class:`Materialize`
onto the step's parameter columns.

Plans are built once by :mod:`repro.engine.planner` and interpreted by
both the in-memory engine and the SQLite renderer, so
:meth:`PhysicalPlan.render` — which backs ``repro explain`` — describes
exactly what runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..relational.relation import CODE_BYTES

if TYPE_CHECKING:  # imported for annotations only; no runtime dependency
    from ..datalog.atoms import Comparison, RelationalAtom
    from ..datalog.query import ConjunctiveQuery
    from ..datalog.terms import Term
    from ..relational.aggregates import AggregateFunction


@dataclass(frozen=True)
class Scan:
    """Scan one positive subgoal's binding relation.

    ``columns`` are the rendered bindable terms in first-occurrence
    order (constants and repeated terms are handled inside the scan by
    selection); ``cardinality`` is the base relation's size from the
    catalog statistics.
    """

    atom: "RelationalAtom"
    columns: tuple[str, ...]
    cardinality: int


@dataclass(frozen=True)
class HashJoin:
    """Natural hash join of the running result with a stage's scan.

    ``on`` holds the shared columns (sorted, for stable rendering);
    empty ``on`` means a cartesian product.  ``estimate`` is the
    System-R style size estimate computed at lowering time; the dynamic
    strategy compares it with observed sizes to decide when to re-plan.
    """

    on: tuple[str, ...]
    columns: tuple[str, ...]
    estimate: float


@dataclass(frozen=True)
class ScanFilter:
    """A sideways-information-passing semi-join filter pushed into a scan.

    After a pre-filter step materializes its ``ok`` relation, later
    scans that bind one of its parameter columns only need the rows
    whose value appears among the survivors: ``column IN (SELECT
    source_column FROM source)``.  The filter is legal precisely because
    the step's query already contains the ``source`` ok-atom binding the
    same column — the a-priori rewrite guarantees the join would discard
    the other rows anyway, so pre-pruning the scan changes nothing but
    the work.

    ``keys`` records the survivor-key count at lowering time; it feeds
    the UES bound (a scan capped to ``k`` keys on ``c`` has at most
    ``k * max_frequency(c)`` rows) and the EXPLAIN output, not
    execution.
    """

    column: str
    source: str
    source_column: str
    keys: int


@dataclass(frozen=True)
class CompareFilter:
    """An arithmetic subgoal applied once all its terms are bound."""

    comparison: "Comparison"
    columns: tuple[str, ...]


@dataclass(frozen=True)
class AntiJoin:
    """A negated subgoal applied as an anti-join once fully bound.

    ``atom`` keeps its negative polarity (it renders as ``NOT p(...)``);
    interpreters scan ``atom.with_positive_polarity()``.
    """

    atom: "RelationalAtom"
    columns: tuple[str, ...]


@dataclass(frozen=True)
class JoinStage:
    """One left-deep join step plus the filters that attach to it.

    ``join`` is ``None`` for the first stage (joining the unit relation
    is the identity).  ``node`` is the guard/trace label — the single
    place checkpoints and trace rows are emitted for this stage.

    ``scan_filters`` are runtime semi-join filters applied to the scan
    *before* the join (they restrict rows, never the schema, so the
    stage's column invariants are untouched).  ``bound`` is the
    guaranteed output-size upper bound from the UES bound algebra
    (:func:`repro.relational.joinorder.chain_upper_bounds`), recorded
    for every order strategy so EXPLAIN prints estimate and bound side
    by side and the dynamic evaluator can re-plan against whichever is
    tighter.
    """

    scan: Scan
    join: HashJoin | None
    filters: tuple[CompareFilter | AntiJoin, ...]
    node: str
    scan_filters: tuple[ScanFilter, ...] = ()
    bound: float | None = None

    @property
    def columns(self) -> tuple[str, ...]:
        if self.filters:
            return self.filters[-1].columns
        if self.join is not None:
            return self.join.columns
        return self.scan.columns

    @property
    def estimate(self) -> float:
        return (
            float(self.scan.cardinality)
            if self.join is None
            else self.join.estimate
        )

    @property
    def estimated_bytes(self) -> float:
        """Flat-buffer size of this stage's output in the
        dictionary-encoded layout (8 bytes per column slot) — the unit
        the parallel executor budgets shared-memory transport in."""
        return self.estimate * CODE_BYTES * len(self.columns)


@dataclass(frozen=True)
class Materialize:
    """Project the running result onto the output terms and name it.

    ``output_terms`` may include constants (re-inserted positionally as
    ``_const{i}`` columns); ``columns`` are the final labels.
    """

    name: str
    output_terms: tuple["Term", ...]
    columns: tuple[str, ...]


@dataclass(frozen=True)
class UnionOp:
    """Set union of the step's rule branches (positionally aligned)."""

    columns: tuple[str, ...]


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column of a :class:`GroupAggregate`.

    ``target`` lists the answer columns the aggregate consumes
    (all head columns for ``COUNT(answer(*))``); ``column`` is the
    produced column label (``_agg{i}``).
    """

    fn: "AggregateFunction"
    target: tuple[str, ...]
    column: str


@dataclass(frozen=True)
class GroupAggregate:
    """Group the answer relation by the parameter columns and compute
    one aggregate column per filter conjunct."""

    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]
    columns: tuple[str, ...]


@dataclass(frozen=True)
class ThresholdFilter:
    """Keep the groups whose aggregates satisfy every filter conjunct.

    ``conditions`` pairs each :class:`~repro.flocks.filters.FilterCondition`
    with the aggregate column it tests.  This is the paper's ``C`` made
    a first-class operator rather than a post-hoc filter.
    """

    conditions: tuple[tuple[object, str], ...]
    columns: tuple[str, ...]


@dataclass
class PhysicalPlan:
    """The lowered physical plan of one conjunctive rule."""

    query: "ConjunctiveQuery"
    order_strategy: str
    order: tuple[int, ...]
    stages: tuple[JoinStage, ...]
    unit_filters: tuple[CompareFilter | AntiJoin, ...]
    root: Materialize

    @property
    def join_sequence(self) -> tuple[str, ...]:
        """The predicates in execution order — what actually joins."""
        return tuple(stage.scan.atom.predicate for stage in self.stages)

    def render(self) -> str:
        """The EXPLAIN text: scan/join/filter/project lines with size
        estimates.  This *is* the plan the engines execute."""
        lines = [f"EXPLAIN ({self.order_strategy} join order) for: {self.query}"]
        for stage in self.stages:
            atom = stage.scan.atom
            bound = (
                f", <={stage.bound:,.0f} bound"
                if stage.bound is not None
                else ""
            )
            if stage.join is None:
                lines.append(
                    f"  scan {atom}  (~{stage.scan.cardinality} tuples{bound})"
                )
            else:
                on = (
                    f" on ({', '.join(stage.join.on)})"
                    if stage.join.on
                    else " (cartesian!)"
                )
                lines.append(
                    f"  join {atom}{on}  (~{stage.join.estimate:,.0f} "
                    f"tuples{bound}, ~{stage.estimated_bytes:,.0f} B encoded)"
                )
            for sf in stage.scan_filters:
                lines.append(
                    f"    scan filter: {sf.column} IN {sf.source}."
                    f"{sf.source_column}  ({sf.keys} keys)"
                )
            for op in stage.filters:
                if isinstance(op, CompareFilter):
                    lines.append(f"    then filter: {op.comparison}")
                else:
                    lines.append(f"    then anti-join: {op.atom}")
        for op in self.unit_filters:
            if isinstance(op, CompareFilter):
                lines.append(f"    then filter: {op.comparison}")
            else:
                lines.append(f"    then anti-join: {op.atom}")
        head = ", ".join(str(t) for t in self.query.head_terms)
        lines.append(f"  project ({head})")
        return "\n".join(lines)


@dataclass
class StepPlan:
    """The lowered physical plan of one FILTER step (or final flock
    answer): union the rule branches, aggregate per conjunct, apply the
    threshold filter, and materialize the surviving parameter tuples."""

    branches: tuple[PhysicalPlan, ...]
    union: UnionOp
    answer_columns: tuple[str, ...]
    group: GroupAggregate
    threshold: ThresholdFilter
    root: Materialize

    @property
    def result_name(self) -> str:
        return self.root.name

    def render(self) -> str:
        parts = [branch.render() for branch in self.branches]
        group = ", ".join(self.group.group_by)
        aggs = ", ".join(
            f"{spec.column}={spec.fn.name}({', '.join(spec.target)})"
            for spec in self.group.aggregates
        )
        parts.append(f"  group by ({group}) computing {aggs}")
        conds = " AND ".join(str(cond) for cond, _ in self.threshold.conditions)
        parts.append(f"  threshold filter: {conds}")
        parts.append(f"  materialize {self.root.name}({group})")
        return "\n".join(parts)


@dataclass(frozen=True)
class Partition:
    """Hash-partition a step's work on one group-key column.

    ``column`` must be a group key bound by every branch; restricting
    each branch's scans that bind it to ``stable_hash(v) % parts ==
    index`` yields exactly the answer rows of partition ``index``, and —
    because the column is a group key — every group falls entirely
    inside one partition, so per-partition threshold filtering is exact.
    """

    column: str
    parts: int


@dataclass(frozen=True)
class Merge:
    """Union the partitions' survivor relations in canonical row order.

    Partitions are disjoint by construction (the partition column is a
    group key), so the merge is a plain concatenation followed by the
    canonical sort that makes parallel output bit-identical to serial.
    """

    columns: tuple[str, ...]


@dataclass
class PartitionedStepPlan:
    """A :class:`StepPlan` fanned out into independent partition tasks.

    The wrapped ``step`` is executed once per partition with its scans
    restricted by the :class:`Partition` predicate; the :class:`Merge`
    operator recombines the per-partition survivors.  Built by
    :func:`repro.engine.partition.partition_step` and executed by
    :class:`repro.engine.parallel.ParallelExecutor` (or rendered as
    per-partition SQL by the SQLite backend).
    """

    step: StepPlan
    partition: Partition
    merge: Merge

    @property
    def result_name(self) -> str:
        return self.step.result_name

    def render(self) -> str:
        lines = [
            f"PARTITION on {self.partition.column} "
            f"into {self.partition.parts} parts"
        ]
        lines.append(self.step.render())
        lines.append(f"  merge partitions on ({', '.join(self.merge.columns)})")
        return "\n".join(lines)


@dataclass(frozen=True)
class StageObservation:
    """What one executed join stage actually did, next to what the
    planner predicted: the System-R estimate, the UES guaranteed bound
    (when computed), and the observed output rows.  Collected by the
    in-memory engine per stage and surfaced through
    :class:`repro.flocks.mining.MiningReport` so estimate quality and
    bound tightness are inspectable per run."""

    node: str
    estimated: float
    bound: float | None
    actual: int

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "node": self.node,
            "estimated": self.estimated,
            "actual": self.actual,
        }
        if self.bound is not None:
            data["bound"] = self.bound
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "StageObservation":
        bound = data.get("bound")
        return cls(
            node=str(data.get("node", "")),
            estimated=float(data.get("estimated", 0.0)),  # type: ignore[arg-type]
            bound=None if bound is None else float(bound),  # type: ignore[arg-type]
            actual=int(data.get("actual", 0)),  # type: ignore[arg-type]
        )


def filters_render(ops: Sequence[CompareFilter | AntiJoin]) -> list[str]:
    """Render attached filter operators (shared by plan renderers)."""
    lines = []
    for op in ops:
        if isinstance(op, CompareFilter):
            lines.append(f"filter: {op.comparison}")
        else:
            lines.append(f"anti-join: {op.atom}")
    return lines
