"""Execution guards: resource budgets and cooperative cancellation.

The paper's own motivation for the dynamic evaluator (Section 4.4) is
that intermediate-relation sizes in the flock plan space are
unpredictable — which means a production evaluator must be *boundable*
and *killable*.  This module is the guard rail every evaluation path
threads through:

* :class:`ResourceBudget` — declarative limits: a wall-clock deadline,
  a cap on any intermediate relation's size, and a cap on the answer;
* :class:`CancellationToken` — a thread-safe flag another thread (or a
  signal handler) can set to stop an evaluation at its next checkpoint;
* :class:`ExecutionGuard` — the live object the evaluators carry.  It
  owns the running partial :class:`~repro.flocks.result.ExecutionTrace`
  and raises :class:`~repro.errors.BudgetExceededError` /
  :class:`~repro.errors.ExecutionCancelled` (both carrying that trace)
  when a checkpoint trips.

Checkpoints are *cooperative*: the evaluators call
:meth:`ExecutionGuard.checkpoint` after each join / FILTER step, and the
SQLite backend installs a progress handler that polls the guard from
inside the VM loop.  Enforcement granularity is therefore one join step
(in memory) or a few thousand VM opcodes (SQLite).

Usage::

    from repro import ResourceBudget, mine

    result, report = mine(db, flock, budget=ResourceBudget(seconds=5))

    # or, at the strategy level:
    guard = ResourceBudget(max_intermediate_rows=100_000).start()
    relation = evaluate_flock(db, flock, guard=guard)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from .errors import BudgetExceededError, ExecutionCancelled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .flocks.result import ExecutionTrace, StepTrace


class CancellationToken:
    """A thread-safe "please stop" flag for cooperative cancellation.

    Create one, hand it to an evaluation (``mine(..., cancel=token)``),
    and call :meth:`cancel` from any thread to make the evaluation raise
    :class:`~repro.errors.ExecutionCancelled` at its next checkpoint.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        return f"CancellationToken({state})"


@dataclass(frozen=True)
class ResourceBudget:
    """Declarative resource limits for one flock evaluation.

    Attributes:
        seconds: wall-clock deadline, measured from :meth:`start` (or
            from the moment an evaluator coerces the budget to a guard).
        max_intermediate_rows: largest intermediate relation (join
            result, step answer relation, or materialized step table)
            the evaluation may produce.
        max_answer_rows: largest final result the evaluation may return.

    All limits default to ``None`` (unbounded); any combination may be
    set.  A budget is immutable and reusable — each :meth:`start` call
    returns a fresh guard with its own clock.
    """

    seconds: Optional[float] = None
    max_intermediate_rows: Optional[int] = None
    max_answer_rows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.seconds is not None and self.seconds < 0:
            raise ValueError("seconds must be non-negative")
        if self.max_intermediate_rows is not None and self.max_intermediate_rows < 0:
            raise ValueError("max_intermediate_rows must be non-negative")
        if self.max_answer_rows is not None and self.max_answer_rows < 0:
            raise ValueError("max_answer_rows must be non-negative")

    @property
    def is_unbounded(self) -> bool:
        return (
            self.seconds is None
            and self.max_intermediate_rows is None
            and self.max_answer_rows is None
        )

    def start(self, cancel: CancellationToken | None = None) -> "ExecutionGuard":
        """Begin the clock; returns the live guard to thread through."""
        return ExecutionGuard(budget=self, cancel=cancel)

    def clamp(self, other: "ResourceBudget | None") -> "ResourceBudget":
        """The tighter of two budgets, limit by limit.

        The admission-control combinator: a server holds a per-tenant
        cap and a request arrives with its own budget — the evaluation
        must honour *both*, which is the limit-wise minimum (``None``
        means unbounded, so the other side's limit wins).  ``other=None``
        returns ``self`` unchanged.
        """
        if other is None:
            return self

        def tighter(a: Optional[float], b: Optional[float]) -> Optional[float]:
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        seconds = tighter(self.seconds, other.seconds)
        intermediate = tighter(
            self.max_intermediate_rows, other.max_intermediate_rows
        )
        answer = tighter(self.max_answer_rows, other.max_answer_rows)
        return ResourceBudget(
            seconds=seconds,
            max_intermediate_rows=(
                None if intermediate is None else int(intermediate)
            ),
            max_answer_rows=None if answer is None else int(answer),
        )


class ExecutionGuard:
    """The live guard one evaluation carries through its checkpoints.

    Owns the partial trace (completed steps are recorded here as the
    evaluation progresses) and the high-water mark of intermediate
    relation sizes, so both successful and aborted runs can report how
    large the evaluation actually got.
    """

    def __init__(
        self,
        budget: ResourceBudget | None = None,
        cancel: CancellationToken | None = None,
    ):
        # Imported lazily: repro.flocks imports this module's consumers.
        from .flocks.result import ExecutionTrace

        self.budget = budget if budget is not None else ResourceBudget()
        self.cancel = cancel
        self.started = time.monotonic()
        self.deadline = (
            self.started + self.budget.seconds
            if self.budget.seconds is not None
            else None
        )
        self.trace: "ExecutionTrace" = ExecutionTrace()
        self.high_water_rows = 0

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started

    @property
    def remaining_seconds(self) -> float | None:
        """Seconds until the deadline, or None when unbounded."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def clamp_sleep(self, seconds: float) -> float:
        """The longest this evaluation may sleep without overshooting
        the deadline — retry backoff uses this so a transient-error
        sleep never outlives the budget it is trying to save."""
        seconds = max(0.0, seconds)
        remaining = self.remaining_seconds
        if remaining is None:
            return seconds
        return min(seconds, remaining)

    def child_budget(self) -> Optional[ResourceBudget]:
        """A budget for a worker subtask of this evaluation, or ``None``
        when the guard is unbounded.

        Process-pool workers cannot share this guard object (the trace
        and cancellation token do not cross process boundaries), so the
        parallel executor gives each worker a fresh budget carrying the
        *remaining* wall-clock and the same row caps; the parent keeps
        polling its own guard — cancellation included — while waiting.
        """
        seconds = self.remaining_seconds
        if (
            seconds is None
            and self.budget.max_intermediate_rows is None
            and self.budget.max_answer_rows is None
        ):
            return None
        return ResourceBudget(
            seconds=seconds,
            max_intermediate_rows=self.budget.max_intermediate_rows,
            max_answer_rows=self.budget.max_answer_rows,
        )

    def record(self, step: "StepTrace") -> None:
        """Append one completed step to the partial trace."""
        self.trace.record(step)

    def note_step(
        self,
        name: str,
        description: str,
        input_tuples: int,
        output_assignments: int,
        seconds: float,
        filtered: bool = False,
    ) -> None:
        """Record a completed step without the caller importing the
        trace types (keeps the relational layer below ``repro.flocks``)."""
        from .flocks.result import StepTrace

        self.trace.record(
            StepTrace(
                name=name,
                description=description,
                input_tuples=input_tuples,
                output_assignments=output_assignments,
                seconds=seconds,
                filtered=filtered,
            )
        )

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------

    def checkpoint(self, rows: int | None = None, node: str = "") -> None:
        """Raise if the evaluation must stop; otherwise return.

        Args:
            rows: size of the intermediate relation just produced, when
                the caller has one; compared with the budget's
                ``max_intermediate_rows``.
            node: label of the checkpoint site, carried on the raised
                exception and in its message.
        """
        if self.cancel is not None and self.cancel.cancelled:
            raise ExecutionCancelled(
                f"evaluation cancelled at {node or 'checkpoint'}",
                trace=self.trace,
                node=node,
            )
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise BudgetExceededError(
                f"wall-clock budget of {self.budget.seconds}s exceeded "
                f"at {node or 'checkpoint'} "
                f"({len(self.trace.steps)} steps completed)",
                trace=self.trace,
                node=node,
                limit="seconds",
            )
        if rows is not None:
            self.high_water_rows = max(self.high_water_rows, rows)
            limit = self.budget.max_intermediate_rows
            if limit is not None and rows > limit:
                raise BudgetExceededError(
                    f"intermediate relation at {node or 'checkpoint'} has "
                    f"{rows} rows, over the budget of {limit}",
                    trace=self.trace,
                    node=node,
                    limit="intermediate_rows",
                )

    def check_answer(self, rows: int, node: str = "answer") -> None:
        """Enforce the answer-size cap on a final result."""
        limit = self.budget.max_answer_rows
        if limit is not None and rows > limit:
            raise BudgetExceededError(
                f"answer relation has {rows} rows, over the budget of {limit}",
                trace=self.trace,
                node=node,
                limit="answer_rows",
            )


#: Anything the evaluators accept where a guard is expected.
GuardLike = Union[ExecutionGuard, ResourceBudget, CancellationToken, None]


def as_guard(value: GuardLike) -> ExecutionGuard | None:
    """Coerce the public ``guard=`` argument to a live guard.

    Accepts ``None`` (no guarding), an :class:`ExecutionGuard`, a
    :class:`ResourceBudget` (its clock starts now), or a bare
    :class:`CancellationToken`.
    """
    if value is None or isinstance(value, ExecutionGuard):
        return value
    if isinstance(value, ResourceBudget):
        return value.start()
    if isinstance(value, CancellationToken):
        return ExecutionGuard(cancel=value)
    raise TypeError(
        "guard must be an ExecutionGuard, ResourceBudget or "
        f"CancellationToken, got {type(value).__name__}"
    )
