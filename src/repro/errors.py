"""Exception hierarchy for the query-flocks library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch a single type at the API boundary.  Subclasses partition the
failure modes by subsystem: language/parsing, safety analysis, relational
evaluation, and plan construction/validation.
"""

from __future__ import annotations


def render_caret(text: str, position: int | None) -> str:
    """Compiler-style caret rendering: the offending line of ``text``
    with a ``^`` under ``position``.

    Returns ``""`` when the position is missing or out of range.  Shared
    by :class:`ParseError` and the diagnostics layer
    (:mod:`repro.analysis.diagnostics`), so every subsystem points at
    source the same way.
    """
    if not text:
        return ""
    if position is None or not 0 <= position <= len(text):
        return ""
    line_start = text.rfind("\n", 0, position) + 1
    line_end = text.find("\n", position)
    if line_end == -1:
        line_end = len(text)
    line = text[line_start:line_end]
    column = position - line_start
    return f"  {line}\n  {' ' * column}^"


def _rebuild_error(cls: type, args: tuple, state: dict) -> "ReproError":
    """Reconstruct a pickled :class:`ReproError` subclass.

    Bypasses the subclass ``__init__`` entirely (several take
    keyword-only arguments, which the default ``Exception`` pickling
    protocol cannot replay) and restores the instance dict directly.
    """
    error = cls.__new__(cls)
    Exception.__init__(error, *args)
    error.__dict__.update(state)
    return error


class ReproError(Exception):
    """Base class for every exception raised by this library.

    Instances round-trip through pickle with their extra attributes
    intact — required by the parallel executor, whose process workers
    raise these across the pool boundary.
    """

    def _pickle_state(self) -> dict:
        """The instance state to ship when pickled (subclasses drop
        process-local attributes here)."""
        return dict(self.__dict__)

    def __reduce__(self) -> tuple:
        return (_rebuild_error, (type(self), self.args, self._pickle_state()))


class ParseError(ReproError):
    """A query-flock or Datalog text could not be parsed.

    Carries the offending text and, when available, a position to help
    the caller locate the problem.  ``str()`` renders the offending line
    with a caret under the failure position, so CLI error paths get a
    compiler-style diagnostic for free.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:
        base = super().__str__()
        caret = render_caret(self.text, self.position)
        return f"{base}\n{caret}" if caret else base


class SchemaError(ReproError):
    """A relation was used with the wrong arity or unknown name."""


class SafetyError(ReproError):
    """A query violates the safety conditions of the paper's Section 3.

    Raised when an unsafe query is submitted for evaluation or when a
    plan step references an unsafe subquery.
    """


class PlanError(ReproError):
    """A query plan violates the legality rule of the paper's Section 4.2."""


class FilterError(ReproError):
    """A filter condition is malformed or unsupported for the requested
    optimization (e.g. a non-monotone filter used with a-priori pruning)."""


class EvaluationError(ReproError):
    """The relational engine could not evaluate a query (e.g. a variable
    in an arithmetic subgoal was never bound by a positive subgoal).

    When the failure came from a SQL backend, :attr:`sql` carries the
    offending statement.
    """

    def __init__(self, message: str, *, sql: str | None = None):
        super().__init__(message)
        self.sql = sql

    def __str__(self) -> str:
        base = super().__str__()
        if self.sql:
            return f"{base}\n  while executing: {self.sql}"
        return base


class HungWorkerError(ReproError):
    """A parallel partition task blew past its watchdog deadline.

    Raised by the parallel executor's watchdog when every morsel of a
    step is overdue (a *subset* of overdue morsels is instead re-run
    serially and recorded as a downgrade).  :attr:`pending` counts the
    tasks that had not completed when the watchdog fired.
    """

    def __init__(self, message: str, *, pending: int = 0):
        super().__init__(message)
        self.pending = pending


class ResumeError(ReproError):
    """A checkpointed run could not be resumed.

    Raised when ``mine(resume=run_id)`` finds no manifest for the run
    id, or when the manifest fails validation: the flock differs, the
    plan fingerprint no longer matches, or the base relations changed
    since the checkpoint was written.  Resuming under any of those
    conditions could silently splice stale survivors into a fresh run,
    so the mismatch is an error, never a fallback.
    """


class ExecutionAborted(ReproError):
    """An evaluation was stopped before completion — by a resource budget
    or a cooperative cancellation.

    :attr:`trace` carries a partial
    :class:`~repro.flocks.result.ExecutionTrace` of the steps that
    completed before the abort, so callers can see how far the
    evaluation got; :attr:`node` names the checkpoint that tripped.
    """

    def __init__(self, message: str, *, trace=None, node: str = ""):
        super().__init__(message)
        self.trace = trace
        self.node = node

    def _pickle_state(self) -> dict:
        # Traces hold evaluation-local state (step records referencing
        # live engine objects); they do not cross process boundaries.
        # The parallel executor re-attaches its own trace on re-raise.
        state = dict(self.__dict__)
        state["trace"] = None
        return state


class BudgetExceededError(ExecutionAborted):
    """A :class:`~repro.guard.ResourceBudget` limit was exhausted.

    :attr:`limit` names which bound tripped: ``"seconds"``,
    ``"intermediate_rows"`` or ``"answer_rows"``.
    """

    def __init__(
        self, message: str, *, trace=None, node: str = "", limit: str = ""
    ):
        super().__init__(message, trace=trace, node=node)
        self.limit = limit


class ExecutionCancelled(ExecutionAborted):
    """A :class:`~repro.guard.CancellationToken` was triggered while an
    evaluation was in flight."""
