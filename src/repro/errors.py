"""Exception hierarchy for the query-flocks library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch a single type at the API boundary.  Subclasses partition the
failure modes by subsystem: language/parsing, safety analysis, relational
evaluation, and plan construction/validation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ParseError(ReproError):
    """A query-flock or Datalog text could not be parsed.

    Carries the offending text and, when available, a position to help
    the caller locate the problem.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position


class SchemaError(ReproError):
    """A relation was used with the wrong arity or unknown name."""


class SafetyError(ReproError):
    """A query violates the safety conditions of the paper's Section 3.

    Raised when an unsafe query is submitted for evaluation or when a
    plan step references an unsafe subquery.
    """


class PlanError(ReproError):
    """A query plan violates the legality rule of the paper's Section 4.2."""


class FilterError(ReproError):
    """A filter condition is malformed or unsupported for the requested
    optimization (e.g. a non-monotone filter used with a-priori pruning)."""


class EvaluationError(ReproError):
    """The relational engine could not evaluate a query (e.g. a variable
    in an arithmetic subgoal was never bound by a positive subgoal)."""
