"""Synthetic workload generators for the paper's example domains.

Every generator is deterministic given a seed, and every domain plants
ground truth (frequent pairs, side-effects, correlated words, hub nodes)
so benchmarks can check *what* was found, not only that evaluators
agree.
"""

from .baskets import (
    basket_database,
    generate_baskets,
    generate_weighted_baskets,
    item_names,
    zipf_weights,
)
from .graphs import (
    generate_hub_digraph,
    generate_layered_hub_digraph,
    generate_random_digraph,
)
from .medical import MedicalWorkload, generate_medical
from .skew import generate_skewed_clickstream
from .text import article_database, generate_articles
from .webdocs import WebWorkload, generate_webdocs

__all__ = [
    "MedicalWorkload",
    "WebWorkload",
    "article_database",
    "basket_database",
    "generate_articles",
    "generate_baskets",
    "generate_hub_digraph",
    "generate_layered_hub_digraph",
    "generate_medical",
    "generate_random_digraph",
    "generate_skewed_clickstream",
    "generate_webdocs",
    "generate_weighted_baskets",
    "item_names",
    "zipf_weights",
]
