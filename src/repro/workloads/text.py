"""Newspaper-style word-occurrence data for the Section 1.3 experiment.

The paper's one empirical claim: rewriting the Fig. 1 SQL pair query to
pre-filter items appearing in ≥ 20 baskets gave a **20-fold speedup**,
measured on "word occurrences in newspaper articles".  We cannot obtain
that proprietary corpus, so this generator synthesizes its statistical
shape: articles as baskets, words as items, frequencies Zipf-distributed
with exponent ≈ 1 (Zipf's law of natural language).  The skew is the
mechanism under test — the overwhelming majority of vocabulary words
fall below support and are eliminated by the pre-filter — so the
substitution preserves the behaviour the measurement exercises.
"""

from __future__ import annotations

import random

from ..relational.catalog import Database
from ..relational.relation import Relation
from .baskets import zipf_weights


def generate_articles(
    n_articles: int = 2000,
    vocabulary: int = 5000,
    words_per_article: int = 30,
    skew: float = 1.1,
    seed: int = 0,
    relation_name: str = "baskets",
) -> Relation:
    """An ``(ArticleID, Word)`` occurrence relation with Zipf vocabulary.

    Column names match the basket schema (``BID``, ``Item``) so the
    Fig. 1 / Fig. 2 machinery applies unchanged — the paper itself ran
    the basket query over word occurrences.
    """
    rng = random.Random(seed)
    words = [f"word{w:05d}" for w in range(vocabulary)]
    weights = zipf_weights(vocabulary, skew)
    rows: set[tuple] = set()
    for article in range(n_articles):
        occurrences = rng.choices(words, weights=weights, k=words_per_article)
        for word in set(occurrences):
            rows.add((article, word))
    return Relation(relation_name, ("BID", "Item"), rows)


def article_database(
    n_articles: int = 2000,
    vocabulary: int = 5000,
    words_per_article: int = 30,
    skew: float = 1.1,
    seed: int = 0,
) -> Database:
    """The word-occurrence corpus wrapped in a database (see
    :func:`generate_articles`)."""
    return Database(
        [generate_articles(n_articles, vocabulary, words_per_article, skew, seed)]
    )
