"""Synthetic market-basket data (the Fig. 2 / Fig. 10 domains).

Item popularity follows a Zipf distribution — the skew that makes the
a-priori trick effective: a few items are frequent, the long tail never
reaches support, and pre-filtering the tail shrinks the self-join.
Generation is deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..relational.catalog import Database
from ..relational.relation import Relation


def zipf_weights(n: int, s: float) -> list[float]:
    """Unnormalized Zipf weights ``1 / rank^s`` for ranks 1..n."""
    if n < 1:
        raise ValueError("n must be positive")
    if s < 0:
        raise ValueError("skew must be non-negative")
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


def item_names(n_items: int, prefix: str = "item") -> list[str]:
    """Stable zero-padded item labels so lexicographic order is sane."""
    width = max(4, len(str(n_items)))
    return [f"{prefix}{i:0{width}d}" for i in range(n_items)]


def generate_baskets(
    n_baskets: int,
    n_items: int,
    avg_basket_size: float = 8.0,
    skew: float = 1.1,
    seed: int = 0,
    relation_name: str = "baskets",
    prefix: str = "item",
    planted_pairs: Sequence[tuple[str, str]] = (),
    planted_rate: float = 0.15,
) -> Relation:
    """A ``baskets(BID, Item)`` relation with Zipf-popular items.

    Basket sizes are geometric-ish around ``avg_basket_size`` (at least
    1 item); items are drawn with replacement and de-duplicated, so a
    basket is a set, matching the set semantics of the paper.

    ``planted_pairs`` plants correlated item pairs (the beer-and-diapers
    effect): each listed pair is inserted together into a fraction
    ``planted_rate`` of baskets, giving benchmarks a ground truth beyond
    the Zipf head.
    """
    rng = random.Random(seed)
    names = item_names(n_items, prefix)
    weights = zipf_weights(n_items, skew)
    rows: set[tuple] = set()
    for bid in range(n_baskets):
        size = max(1, round(rng.expovariate(1.0 / avg_basket_size)))
        size = min(size, n_items)
        chosen = set(rng.choices(names, weights=weights, k=size))
        if planted_pairs and rng.random() < planted_rate:
            chosen |= set(rng.choice(list(planted_pairs)))
        for item in chosen:
            rows.add((bid, item))
    return Relation(relation_name, ("BID", "Item"), rows)


def generate_weighted_baskets(
    n_baskets: int,
    n_items: int,
    avg_basket_size: float = 8.0,
    skew: float = 1.1,
    max_weight: int = 10,
    seed: int = 0,
) -> Database:
    """The Fig. 10 weighted workload: ``baskets(BID, Item)`` plus
    ``importance(BID, W)`` with integer weights 1..max_weight (e.g. the
    basket's total purchase value, or a document's web hits)."""
    rng = random.Random(seed + 1)
    baskets = generate_baskets(
        n_baskets, n_items, avg_basket_size, skew, seed=seed
    )
    bids = baskets.column_values("BID")
    importance = Relation(
        "importance",
        ("BID", "W"),
        {(bid, rng.randint(1, max_weight)) for bid in bids},
    )
    db = Database([baskets, importance])
    return db


def basket_database(
    n_baskets: int,
    n_items: int,
    avg_basket_size: float = 8.0,
    skew: float = 1.1,
    seed: int = 0,
) -> Database:
    """Just the ``baskets`` relation wrapped in a database."""
    return Database(
        [generate_baskets(n_baskets, n_items, avg_basket_size, skew, seed)]
    )
