"""Random directed graphs for the Fig. 6 pathological path flock
(Example 4.3): "about a node $1, whether it has at least c successors
from which there is a path of length n extending".

Two generators:

* :func:`generate_random_digraph` — plain G(n, m) random arcs;
* :func:`generate_hub_digraph` — plants *hubs* with many successors
  that feed a long-path "core", so the n-hop flock has survivors and
  the chained Fig. 7 plan has real pruning work to do at every level.
"""

from __future__ import annotations

import random

from ..relational.catalog import Database
from ..relational.relation import Relation


def generate_random_digraph(
    n_nodes: int,
    n_arcs: int,
    seed: int = 0,
    relation_name: str = "arc",
) -> Relation:
    """Uniform random arcs (no self-loops; duplicates collapse)."""
    rng = random.Random(seed)
    rows: set[tuple] = set()
    while len(rows) < min(n_arcs, n_nodes * (n_nodes - 1)):
        u = rng.randrange(n_nodes)
        v = rng.randrange(n_nodes)
        if u != v:
            rows.add((u, v))
    return Relation(relation_name, ("U", "V"), rows)


def generate_layered_hub_digraph(
    max_depth: int = 3,
    hubs_per_depth: int = 15,
    successors_per_hub: int = 25,
    seed: int = 0,
) -> Database:
    """Hubs whose successors' outgoing paths die at a controlled depth.

    For each depth ``d`` in 0..max_depth there are ``hubs_per_depth``
    hubs, each pointing at ``successors_per_hub`` fresh nodes from which
    a simple chain of exactly ``d`` further arcs extends.  A depth-``d``
    hub therefore satisfies the Fig. 6 flock for path length n iff
    n <= d — so the Fig. 7 chained plan prunes a precise slice of the
    candidate set at *every* level, which is the behaviour Example 4.3
    is about.

    Hub IDs encode their depth: hub ``h`` for depth ``d`` is
    ``d * 1000 + h``.
    """
    rows: set[tuple] = set()
    next_node = 100_000
    for depth in range(max_depth + 1):
        for h in range(hubs_per_depth):
            hub = depth * 1000 + h
            for _ in range(successors_per_hub):
                successor = next_node
                next_node += 1
                rows.add((hub, successor))
                prev = successor
                for _ in range(depth):
                    nxt = next_node
                    next_node += 1
                    rows.add((prev, nxt))
                    prev = nxt
    return Database([Relation("arc", ("U", "V"), rows)])


def generate_hub_digraph(
    n_hubs: int = 20,
    successors_per_hub: int = 30,
    core_nodes: int = 200,
    core_out_degree: int = 3,
    noise_nodes: int = 500,
    noise_arcs: int = 1000,
    seed: int = 0,
) -> Database:
    """A graph where hubs point at many core nodes and the core is dense
    enough that long paths exist.

    Node IDs: hubs ``0..n_hubs-1``, core ``1000..1000+core_nodes-1``,
    noise ``10000+``.  Hubs satisfy the path flock for sizable n and
    support up to ``successors_per_hub``; noise nodes rarely do.
    """
    rng = random.Random(seed)
    rows: set[tuple] = set()
    core = [1000 + i for i in range(core_nodes)]

    for hub in range(n_hubs):
        for target in rng.sample(core, min(successors_per_hub, core_nodes)):
            rows.add((hub, target))

    # Dense-ish core: every core node points at a few others, so paths
    # of any modest length extend from almost every core node.
    for node in core:
        for target in rng.sample(core, core_out_degree):
            if target != node:
                rows.add((node, target))

    # Noise: sparse arcs among high-numbered nodes (dead ends mostly).
    for _ in range(noise_arcs):
        u = 10000 + rng.randrange(noise_nodes)
        v = 10000 + rng.randrange(noise_nodes)
        if u != v:
            rows.add((u, v))

    return Database([Relation("arc", ("U", "V"), rows)])
