"""Synthetic medical database for the Fig. 3 side-effect flock.

Schema (Example 2.2):

* ``diagnoses(Patient, Disease)`` — one disease per patient (the paper
  assumes this);
* ``exhibits(Patient, Symptom)`` — mostly symptoms caused by the
  patient's disease, plus background noise;
* ``treatments(Patient, Medicine)`` — medicines chosen per disease;
* ``causes(Disease, Symptom)`` — the medical knowledge base.

The generator *plants* true unexplained side-effects: chosen medicines
deterministically produce a symptom that no disease of their takers
explains.  The planted (symptom, medicine) pairs are returned as ground
truth so tests and benchmarks can check recall, not just agreement
between evaluators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..relational.catalog import Database
from ..relational.relation import Relation


@dataclass(frozen=True)
class MedicalWorkload:
    """The generated database plus the planted ground truth."""

    db: Database
    planted_pairs: frozenset[tuple[str, str]]  # (symptom, medicine)
    n_patients: int


def generate_medical(
    n_patients: int = 2000,
    n_diseases: int = 40,
    n_symptoms: int = 120,
    n_medicines: int = 60,
    symptoms_per_disease: int = 4,
    medicines_per_disease: int = 3,
    noise_symptom_rate: float = 0.5,
    n_planted: int = 3,
    planted_rate: float = 0.9,
    seed: int = 0,
) -> MedicalWorkload:
    """Build the four-relation medical database.

    Args:
        noise_symptom_rate: expected number of random (possibly
            explained) extra symptoms per patient.
        n_planted: how many medicines get a planted side-effect symptom.
        planted_rate: probability that a patient on a planted medicine
            exhibits its side-effect symptom.
    """
    rng = random.Random(seed)
    diseases = [f"disease{d:03d}" for d in range(n_diseases)]
    symptoms = [f"symptom{s:03d}" for s in range(n_symptoms)]
    medicines = [f"med{m:03d}" for m in range(n_medicines)]

    # Knowledge base: each disease causes a few symptoms.
    causes_rows: set[tuple] = set()
    disease_symptoms: dict[str, list[str]] = {}
    for disease in diseases:
        caused = rng.sample(symptoms, symptoms_per_disease)
        disease_symptoms[disease] = caused
        for symptom in caused:
            causes_rows.add((disease, symptom))

    # Each disease has a standard medicine repertoire.
    disease_medicines: dict[str, list[str]] = {
        disease: rng.sample(medicines, medicines_per_disease)
        for disease in diseases
    }

    # Planted side-effects: medicine -> a symptom it secretly causes.
    # Plant on the most widely prescribed medicines (those in many
    # diseases' repertoires) so the pair can reach support, and choose
    # symptoms not caused by any disease that uses the medicine, so the
    # pair is genuinely unexplained for every taker.
    usage_count: dict[str, int] = {m: 0 for m in medicines}
    for meds in disease_medicines.values():
        for medicine in meds:
            usage_count[medicine] += 1
    by_popularity = sorted(medicines, key=lambda m: -usage_count[m])
    planted: dict[str, str] = {}
    planted_candidates = by_popularity[:n_planted]
    for medicine in planted_candidates:
        users = [
            d for d, meds in disease_medicines.items() if medicine in meds
        ]
        explained = {s for d in users for s in disease_symptoms[d]}
        free = [s for s in symptoms if s not in explained]
        if free:
            planted[medicine] = rng.choice(free)

    diagnoses_rows: set[tuple] = set()
    exhibits_rows: set[tuple] = set()
    treatments_rows: set[tuple] = set()
    for patient in range(n_patients):
        disease = rng.choice(diseases)
        diagnoses_rows.add((patient, disease))
        # Disease symptoms appear with high probability.
        for symptom in disease_symptoms[disease]:
            if rng.random() < 0.8:
                exhibits_rows.add((patient, symptom))
        # Background noise symptoms.
        noise = rng.expovariate(1.0 / noise_symptom_rate) if noise_symptom_rate else 0
        for _ in range(round(noise)):
            exhibits_rows.add((patient, rng.choice(symptoms)))
        # Treatment: one or two medicines from the disease's repertoire.
        prescribed = rng.sample(
            disease_medicines[disease],
            k=rng.randint(1, min(2, medicines_per_disease)),
        )
        for medicine in prescribed:
            treatments_rows.add((patient, medicine))
            side_effect = planted.get(medicine)
            if side_effect is not None and rng.random() < planted_rate:
                exhibits_rows.add((patient, side_effect))

    db = Database(
        [
            Relation("diagnoses", ("P", "D"), diagnoses_rows),
            Relation("exhibits", ("P", "S"), exhibits_rows),
            Relation("treatments", ("P", "M"), treatments_rows),
            Relation("causes", ("D", "S"), causes_rows),
        ]
    )
    planted_pairs = frozenset(
        (symptom, medicine) for medicine, symptom in planted.items()
    )
    return MedicalWorkload(db, planted_pairs, n_patients)
