"""Adversarial-skew clickstream data: where estimates lie and bounds win.

The domain is a promo-campaign funnel over one shared user key:

* ``promo(U, G)`` — the users enrolled in a promo group (small; the
  natural start relation).
* ``clicks(U, P)`` — page clicks, long-tailed over pages.
* ``views(U, V)`` — video views, the same shape.
* ``purchases(U, I)`` — purchases, a few per purchasing user.

The trap is *correlated skew*: a small set of bot accounts is hot in
**both** ``clicks`` and ``views`` (hundreds of rows each) but appears in
``promo`` and never purchases anything.  Under the independence
assumption, ``clicks ⋈ views`` on ``U`` looks cheap — per-user activity
averages out — so an estimate-driven orderer (greedy or Selinger) joins
the two hot relations early and pays a quadratic blowup on every bot
(``clicks_u × views_u`` rows per bot user).  The pessimistic UES orderer
never believes the average: its bound for the hot-hot join carries the
*maximum* per-user frequency of both sides, while ``purchases`` —
bounded by a small max frequency — provably stays small, so bounds order
the bot-killing join first and the blowup never materializes.

The page/item long tails give runtime filters their bite: most pages
never reach support, so the a-priori pre-filter's survivor set is tiny
and the injected semi-join filter discards the bulk of each later scan.

Generation is deterministic given a seed.
"""

from __future__ import annotations

import random

from ..relational.catalog import Database
from ..relational.relation import Relation
from .baskets import item_names, zipf_weights


def generate_skewed_clickstream(
    n_users: int = 8000,
    n_bots: int = 24,
    n_promo_users: int = 600,
    n_pages: int = 600,
    n_videos: int = 500,
    n_items: int = 300,
    bot_activity: int = 120,
    avg_user_activity: float = 3.0,
    page_skew: float = 1.2,
    seed: int = 0,
) -> Database:
    """The adversarial-skew promo-funnel database.

    Users ``0 .. n_bots-1`` are the bots: every one of them is enrolled
    in ``promo``, produces ``bot_activity`` rows in *both* ``clicks``
    and ``views``, and is absent from ``purchases``.  Ordinary users
    click/view/purchase a handful of Zipf-distributed pages, videos and
    items.  All parameters scale together so benchmarks can shrink the
    workload without losing the skew structure.
    """
    if n_bots > n_promo_users or n_promo_users > n_users:
        raise ValueError("need n_bots <= n_promo_users <= n_users")
    rng = random.Random(seed)
    pages = item_names(n_pages, "page")
    videos = item_names(n_videos, "video")
    items = item_names(n_items, "item")
    page_weights = zipf_weights(n_pages, page_skew)
    video_weights = zipf_weights(n_videos, page_skew)
    item_weights = zipf_weights(n_items, page_skew)
    groups = ("gold", "silver", "bronze", "trial")

    bots = list(range(n_bots))
    ordinary_promo = rng.sample(
        range(n_bots, n_users), n_promo_users - n_bots
    )
    promo_rows = {
        (user, rng.choice(groups)) for user in bots + ordinary_promo
    }

    def activity(hot: bool) -> int:
        if hot:
            return bot_activity
        return max(1, round(rng.expovariate(1.0 / avg_user_activity)))

    clicks_rows: set[tuple] = set()
    views_rows: set[tuple] = set()
    purchases_rows: set[tuple] = set()
    for user in range(n_users):
        hot = user < n_bots
        for page in rng.choices(pages, page_weights, k=activity(hot)):
            clicks_rows.add((user, page))
        for video in rng.choices(videos, video_weights, k=activity(hot)):
            views_rows.add((user, video))
        if not hot:
            for item in rng.choices(
                items, item_weights, k=activity(False)
            ):
                purchases_rows.add((user, item))

    return Database(
        [
            Relation("promo", ("U", "G"), promo_rows),
            Relation("clicks", ("U", "P"), clicks_rows),
            Relation("views", ("U", "V"), views_rows),
            Relation("purchases", ("U", "I"), purchases_rows),
        ]
    )
