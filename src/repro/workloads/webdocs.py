"""Synthetic HTML-corpus data for the Fig. 4 strongly-connected-words
flock (Example 2.3).

Schema:

* ``inTitle(D, W)`` — word W in the title of document D;
* ``inAnchor(A, W)`` — word W in the text of anchor A;
* ``link(A, D1, D2)`` — anchor A links document D1 to document D2.

Words are drawn from a Zipf vocabulary, and a set of *topic pairs* is
planted: correlated word pairs that co-occur in titles and across
anchor→target-title edges far more often than chance, so the flock has
something real to find.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..relational.catalog import Database
from ..relational.relation import Relation
from .baskets import zipf_weights


@dataclass(frozen=True)
class WebWorkload:
    """The generated corpus plus the planted correlated word pairs."""

    db: Database
    planted_pairs: frozenset[tuple[str, str]]  # lexicographically ordered


def generate_webdocs(
    n_documents: int = 1000,
    n_anchors: int = 3000,
    vocabulary: int = 400,
    title_words: int = 4,
    anchor_words: int = 2,
    skew: float = 1.0,
    n_planted: int = 4,
    planted_rate: float = 0.35,
    seed: int = 0,
) -> WebWorkload:
    """Build the three-relation web corpus.

    Document IDs are ``d<no>``; anchor IDs are ``a<no>`` — disjoint, as
    the paper's Example 2.3 requires ("we assume that there are no
    values in common between these two types of ID's").
    """
    rng = random.Random(seed)
    words = [f"w{w:04d}" for w in range(vocabulary)]
    weights = zipf_weights(vocabulary, skew)

    # Planted topics: pairs of mid-frequency words that travel together.
    mid = words[vocabulary // 10: vocabulary // 2] or words
    planted: list[tuple[str, str]] = []
    pool = rng.sample(mid, min(2 * n_planted, len(mid) - len(mid) % 2))
    for i in range(0, len(pool) - 1, 2):
        a, b = sorted((pool[i], pool[i + 1]))
        planted.append((a, b))

    documents = [f"d{d:05d}" for d in range(n_documents)]
    in_title: set[tuple] = set()
    doc_topics: dict[str, tuple[str, str] | None] = {}
    for doc in documents:
        topic = rng.choice(planted) if planted and rng.random() < planted_rate else None
        doc_topics[doc] = topic
        title = set(rng.choices(words, weights=weights, k=title_words))
        if topic is not None:
            title |= set(topic)
        for word in title:
            in_title.add((doc, word))

    in_anchor: set[tuple] = set()
    link: set[tuple] = set()
    for a in range(n_anchors):
        anchor = f"a{a:05d}"
        source = rng.choice(documents)
        target = rng.choice(documents)
        link.add((anchor, source, target))
        text = set(rng.choices(words, weights=weights, k=anchor_words))
        # Anchors often echo one topic word of the target's title.
        topic = doc_topics.get(target)
        if topic is not None and rng.random() < 0.8:
            text.add(rng.choice(topic))
        for word in text:
            in_anchor.add((anchor, word))

    db = Database(
        [
            Relation("inTitle", ("D", "W"), in_title),
            Relation("inAnchor", ("A", "W"), in_anchor),
            Relation("link", ("A", "D1", "D2"), link),
        ]
    )
    return WebWorkload(db, frozenset(planted))
