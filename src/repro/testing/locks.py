"""Instrumented locks that verify acquisition order at runtime.

The static side of lock discipline lives in ``repro.analysis.conlint``:
it proves guarded attributes move under their lock and builds the
declared lock-order graph from nested acquisitions.  This module is the
*runtime* half of that contract.  A :class:`LockOrderAuditor` hands out
:class:`InstrumentedLock` wrappers that record, per thread, which locks
are held when another is taken; the observed edges can then be compared
against the analyzer's declared graph (see
``tests/analysis/test_lock_order.py``), and acquiring *against* the
declared order raises :class:`LockOrderViolation` immediately instead
of deadlocking some unlucky CI run years later.

Usage::

    auditor = LockOrderAuditor(declared={("A._la", "B._lb")})
    session._counter_lock = auditor.instrument("A._la")
    cache._lock = auditor.instrument("B._lb")
    ...exercise under threads...
    assert auditor.edges() <= {("A._la", "B._lb")}
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Set, Tuple

Edge = Tuple[str, str]


class LockOrderViolation(AssertionError):
    """Two locks were taken in the opposite of their declared order."""


class InstrumentedLock:
    """A context-manager lock reporting acquisitions to its auditor.

    Wraps a real ``threading.Lock`` (or anything with ``acquire`` /
    ``release``), so it can be dropped in for a lock attribute on a
    live object — ``with self._lock:`` and ``@locked("_lock")`` both
    keep working.
    """

    def __init__(
        self,
        name: str,
        auditor: "LockOrderAuditor",
        inner: Optional[threading.Lock] = None,
    ):
        self.name = name
        self._auditor = auditor
        self._inner = inner if inner is not None else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            try:
                self._auditor._note_acquire(self.name)
            except LockOrderViolation:
                self._inner.release()
                raise
        return acquired

    def release(self) -> None:
        self._auditor._note_release(self.name)
        self._inner.release()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()


class LockOrderAuditor:
    """Tracks per-thread held-lock stacks and the edges they induce.

    Args:
        declared: the allowed lock-order edges, usually the analyzer's
            :func:`repro.analysis.conlint.lock_order_edges` rendered to
            ``("Class._lock", "Other._lock")`` name pairs.  When given,
            a nested acquisition whose *reverse* is reachable through
            the declared graph raises :class:`LockOrderViolation`.
            ``None`` records edges without enforcing anything.
    """

    GUARDED = {"_observed": "_lock"}

    def __init__(self, declared: Optional[Iterable[Edge]] = None):
        self.declared: Optional[Set[Edge]] = (
            set(declared) if declared is not None else None
        )
        self._observed: Set[Edge] = set()
        self._lock = threading.Lock()
        self._held = threading.local()

    def instrument(
        self, name: str, inner: Optional[threading.Lock] = None
    ) -> InstrumentedLock:
        """A lock named ``name`` whose acquisitions this auditor sees."""
        return InstrumentedLock(name, self, inner)

    def edges(self) -> Set[Edge]:
        """Snapshot of every (outer, inner) nesting observed so far."""
        with self._lock:
            return set(self._observed)

    # -- bookkeeping (called by InstrumentedLock) ----------------------

    def _stack(self) -> list:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _note_acquire(self, name: str) -> None:
        stack = self._stack()
        for outer in stack:
            if outer == name:
                continue  # re-entrant hold (RLock) orders nothing
            edge = (outer, name)
            with self._lock:
                self._observed.add(edge)
            if self._against_declared_order(edge):
                raise LockOrderViolation(
                    f"acquired {name!r} while holding {outer!r}, but the "
                    f"declared lock order requires {name!r} before "
                    f"{outer!r}"
                )
        stack.append(name)

    def _note_release(self, name: str) -> None:
        stack = self._stack()
        # Release the innermost matching hold (locks are not required
        # to release in strict LIFO order).
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    def _against_declared_order(self, edge: Edge) -> bool:
        """True when the declared graph orders ``edge[1]`` strictly
        before ``edge[0]`` — i.e. this acquisition inverts the order."""
        if self.declared is None:
            return False
        outer, inner = edge
        if (outer, inner) in self.declared:
            return False
        return self._reaches(inner, outer)

    def _reaches(self, start: str, goal: str) -> bool:
        assert self.declared is not None
        frontier = [start]
        seen = {start}
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for a, b in self.declared:
                if a == node and b not in seen:
                    seen.add(b)
                    frontier.append(b)
        return False


__all__ = [
    "InstrumentedLock",
    "LockOrderAuditor",
    "LockOrderViolation",
]
