"""Deterministic fault injection for the evaluator and backends.

The degradation machinery (strategy fallback, SQLite retry, budget
aborts) is only trustworthy if its failure paths run in CI, not just in
production incidents.  This harness plants *failure points* at fixed
sites inside the library; a test arms a site with an exception and the
next call(s) through that site raise it, deterministically.

Sites currently instrumented:

========================  ====================================================
``relational.join``       after each join step in ``evaluate_conjunctive``
``executor.step``         before each FILTER step in ``execute_plan``
``optimizer.search``      per candidate plan scored in ``best_plan``
``dynamic.join``          per join in the dynamic evaluator
``sqlite.execute``        before every statement the SQLite backend executes
``parallel.worker``       at the start of every parallel partition task
``parallel.hang``         same place, but an armed :class:`Hang` makes the
                          worker *sleep* instead of raise — the hung-worker
                          watchdog's deterministic test hook
========================  ====================================================

Arming ``parallel.worker`` with :class:`WorkerKill` simulates a hard
worker death: a process-pool worker exits immediately (the parent sees
``BrokenProcessPool``), a thread worker raises it straight through —
either way the parallel executor must degrade to serial execution and
record the downgrade.

Usage::

    from repro.testing import faults

    with faults.inject("sqlite.execute", sqlite3.OperationalError("database is locked"), times=2):
        backend.evaluate_flock(flock)   # first two executes fail, then heal

The harness is deliberately global (module-level registry) so the site
checks cost one dict lookup on an *empty* dict when nothing is armed —
cheap enough to leave in hot paths permanently.  Arming is done from
the test thread, but *tripping* happens concurrently (the thread-pool
parallel path drives many workers through one site), so the per-fault
``hits``/``failures`` counters are updated under a lock.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Union


ErrorSource = Union[BaseException, type, Callable[[], BaseException]]


class WorkerKill(BaseException):
    """Injected at ``parallel.worker`` to simulate a killed worker.

    Deliberately a ``BaseException``: real worker deaths (OOM kill,
    segfault) are not ordinary exceptions, and the parallel executor's
    crash handling must not depend on ``except Exception`` catching it.
    In a process-pool worker the task handler turns it into an immediate
    ``os._exit``, so the parent observes a genuinely broken pool.
    """


class Hang(BaseException):
    """Injected at ``parallel.hang`` to simulate a *hung* worker.

    Unlike every other injected error this one is not raised out of the
    site: :func:`maybe_hang` catches it and sleeps for
    :attr:`seconds`, so the worker simply stops making progress — the
    failure mode the parallel executor's watchdog exists to detect.
    Keep ``seconds`` small in tests: an abandoned (non-cancellable)
    worker sleeps it out in the background.
    """

    def __init__(self, seconds: float = 2.0):
        super().__init__(f"injected hang for {seconds}s")
        self.seconds = seconds

    def __reduce__(self):
        # The default BaseException reduction replays ``Hang(*args)``,
        # i.e. ``Hang("injected hang for ...s")`` — a message string
        # where ``seconds`` belongs.  Rebuild from the real parameter.
        return (Hang, (self.seconds,))


@dataclass
class FaultSpec:
    """One armed failure point.

    Attributes:
        site: the instrumented site name.
        error: an exception instance, an exception class, or a zero-arg
            factory returning an exception.
        skip: let this many hits pass before failing (fail the
            ``skip+1``-th call onwards).
        times: fail at most this many times, then heal (``None`` =
            fail forever while armed).  ``skip=0, times=2`` models a
            transient failure that a retry loop should survive.
        hits: total calls observed through the site (telemetry for
            assertions).
        failures: how many of those calls were failed.
    """

    site: str
    error: ErrorSource
    skip: int = 0
    times: int | None = None
    hits: int = field(default=0, init=False)
    failures: int = field(default=0, init=False)

    def make_error(self) -> BaseException:
        if isinstance(self.error, BaseException):
            return self.error
        made = self.error()
        if not isinstance(made, BaseException):  # exception class case
            raise TypeError(f"fault factory for {self.site!r} returned {made!r}")
        return made

    def should_fail(self) -> bool:
        if self.hits <= self.skip:
            return False
        if self.times is not None and self.failures >= self.times:
            return False
        return True


#: site name -> armed fault.  Empty in production; `trip` is a no-op then.
_ACTIVE: dict[str, FaultSpec] = {}

#: Serializes counter updates: workers trip sites concurrently, and an
#: unlocked ``hits += 1`` / ``failures += 1`` pair would race (lost
#: increments, or two workers both claiming the same scheduled failure).
_LOCK = threading.Lock()


def trip(site: str) -> None:
    """Called by instrumented library code; raises if ``site`` is armed.

    No-op (one failed dict lookup, no lock) when nothing is armed.
    Thread-safe: the hit/failure accounting for one call is atomic, so
    a schedule like ``skip=1, times=2`` fails exactly the 2nd and 3rd
    hits even when the hits come from concurrent pool workers.
    """
    if not _ACTIVE:
        return
    with _LOCK:
        fault = _ACTIVE.get(site)
        if fault is None:
            return
        fault.hits += 1
        if not fault.should_fail():
            return
        fault.failures += 1
        error = fault.make_error()
    raise error


def maybe_hang(site: str) -> None:
    """A trip point whose injected :class:`Hang` *sleeps* (outside the
    registry lock) instead of raising — workers call this so a test can
    deterministically simulate a stalled task.  Any non-``Hang`` error
    armed at the site raises as usual."""
    try:
        trip(site)
    except Hang as hang:
        time.sleep(hang.seconds)


@contextmanager
def inject(
    site: str,
    error: ErrorSource,
    skip: int = 0,
    times: int | None = None,
) -> Iterator[FaultSpec]:
    """Arm ``site`` with ``error`` for the duration of the block.

    Yields the :class:`FaultSpec` so tests can assert on ``hits`` /
    ``failures``.  Nested injection at the same site is rejected — it
    would make the failure schedule ambiguous.
    """
    if isinstance(error, type) and issubclass(error, BaseException):
        def error_source() -> BaseException:
            return error(f"injected fault at {site}")
    else:
        error_source = error
    fault = FaultSpec(site=site, error=error_source, skip=skip, times=times)
    with _LOCK:
        if site in _ACTIVE:
            raise RuntimeError(f"fault site {site!r} is already armed")
        _ACTIVE[site] = fault
    try:
        yield fault
    finally:
        with _LOCK:
            _ACTIVE.pop(site, None)


def active_faults() -> tuple[str, ...]:
    """Names of the currently armed sites (for diagnostics)."""
    with _LOCK:
        return tuple(sorted(_ACTIVE))


def reset_faults() -> None:
    """Disarm everything — a safety net for test teardown."""
    with _LOCK:
        _ACTIVE.clear()
