"""Chaos testing: seeded randomized fault schedules over the fault sites.

The recovery ladder (retry → partition salvage → backend/strategy
downgrade → abort) is a safety argument about *composed* failure
handling, and composed handlers have composed bugs.  This harness turns
the argument into a testable property: generate a random — but fully
seed-determined — schedule of faults across every instrumented site,
run :func:`repro.flocks.mining.mine` under it, and check the outcome
against a fault-free baseline.

The property (see :func:`classify_outcome`): under **any** schedule, a
``mine()`` call either

* returns a result **bit-identical** to the fault-free run (the ladder
  absorbed every fault — possibly with downgrades in the report), or
* raises a **clean**, library-typed error
  (:class:`~repro.errors.ReproError`, which includes guard aborts with
  their partial trace);

it must never return a *silently wrong* result, and never leak a
non-library exception.  A failing seed reproduces exactly: the
schedule, the retry jitter, and the partition hashing are all
deterministic.

Usage::

    from repro.testing.chaos import chaos_schedule, run_under_chaos

    schedule = chaos_schedule(seed=1234)
    verdict = run_under_chaos(db, flock, schedule, expected)
    assert verdict.kind in ("identical", "clean-abort")

Error menus are site-appropriate: each site only injects failure types
that can genuinely occur there (a SQLite site raises
``sqlite3.OperationalError``, a worker site may die with
:class:`~repro.testing.faults.WorkerKill` or stall with
:class:`~repro.testing.faults.Hang`), so a surviving non-library
exception is always a real leak, never an artifact of the harness.
"""

from __future__ import annotations

import random
import sqlite3
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from ..errors import EvaluationError, PlanError, ReproError
from ..recovery import RetryPolicy, TransientFault
from .faults import Hang, WorkerKill, inject


def _make(error_type: type, site: str) -> Callable[[], BaseException]:
    def factory() -> BaseException:
        return error_type(f"chaos fault at {site}")
    return factory


#: Per-site error menus.  Every entry is a zero-arg factory builder so
#: injected exception *instances* are fresh per trip.
SITE_MENUS: dict[str, tuple[Callable[[str], Callable[[], BaseException]], ...]] = {
    "relational.join": (
        lambda site: _make(TransientFault, site),
        lambda site: _make(EvaluationError, site),
    ),
    "executor.step": (
        lambda site: _make(TransientFault, site),
        lambda site: _make(PlanError, site),
        lambda site: _make(EvaluationError, site),
    ),
    "optimizer.search": (
        lambda site: _make(TransientFault, site),
        lambda site: _make(PlanError, site),
    ),
    "dynamic.join": (
        lambda site: _make(TransientFault, site),
        lambda site: _make(PlanError, site),
    ),
    "sqlite.execute": (
        lambda site: (lambda: sqlite3.OperationalError("database is locked")),
        lambda site: (lambda: sqlite3.OperationalError("database is busy")),
        lambda site: (lambda: sqlite3.DatabaseError(f"chaos fault at {site}")),
    ),
    "parallel.worker": (
        lambda site: (lambda: WorkerKill(f"chaos kill at {site}")),
        lambda site: _make(TransientFault, site),
    ),
    "parallel.hang": (
        # Short stalls only: an abandoned worker sleeps these out in the
        # background, and the watchdog must win against real clocks.
        lambda site: (lambda: Hang(0.2)),
        lambda site: (lambda: Hang(0.5)),
    ),
}


@dataclass(frozen=True)
class SiteFault:
    """One armed site within a chaos schedule."""

    site: str
    error_name: str
    make_error: Callable[[], BaseException]
    skip: int
    times: int

    def __str__(self) -> str:
        return (
            f"{self.site}: {self.error_name} x{self.times} "
            f"after {self.skip} clean hit(s)"
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A seed-determined set of faults to run one evaluation under."""

    seed: int
    faults: tuple[SiteFault, ...]

    def __str__(self) -> str:
        body = "; ".join(str(f) for f in self.faults) or "no faults"
        return f"chaos(seed={self.seed}): {body}"

    @contextmanager
    def apply(self) -> Iterator[None]:
        """Arm every fault in the schedule for the duration."""
        with ExitStack() as stack:
            for fault in self.faults:
                stack.enter_context(
                    inject(
                        fault.site,
                        fault.make_error,
                        skip=fault.skip,
                        times=fault.times,
                    )
                )
            yield


def chaos_schedule(
    seed: int,
    sites: Optional[Sequence[str]] = None,
    max_sites: int = 3,
    max_times: int = 3,
    max_skip: int = 2,
) -> FaultSchedule:
    """Generate the deterministic fault schedule for ``seed``.

    Picks 1..``max_sites`` distinct sites, and for each a failure type
    from its menu, a number of clean hits to let pass (``skip``), and a
    number of failures before healing (``times``).  Finite ``times``
    everywhere: a chaos run models faults that *can* be survived — the
    permanently-broken case is covered by the targeted degradation
    tests.
    """
    rng = random.Random(seed)
    pool = list(sites) if sites is not None else sorted(SITE_MENUS)
    count = rng.randint(1, min(max_sites, len(pool)))
    chosen = rng.sample(pool, count)
    faults = []
    for site in sorted(chosen):
        menu = SITE_MENUS[site]
        builder = rng.choice(menu)
        make_error = builder(site)
        faults.append(
            SiteFault(
                site=site,
                error_name=type(make_error()).__name__,
                make_error=make_error,
                skip=rng.randint(0, max_skip),
                times=rng.randint(1, max_times),
            )
        )
    return FaultSchedule(seed=seed, faults=tuple(faults))


@dataclass(frozen=True)
class ChaosVerdict:
    """How one evaluation behaved under a schedule.

    ``kind`` is ``"identical"`` (result bit-identical to the fault-free
    baseline), ``"clean-abort"`` (a :class:`~repro.errors.ReproError`
    surfaced), or ``"silent-partial"`` — the property violation: a
    result that differs from the baseline.  A non-library exception
    propagates out of :func:`run_under_chaos` itself; the property
    suite treats that as a failure too.
    """

    kind: str
    schedule: FaultSchedule
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.kind} under {self.schedule}" + (
            f" ({self.detail})" if self.detail else ""
        )


def run_under_chaos(
    db,
    flock,
    schedule: FaultSchedule,
    expected_tuples,
    **mine_kwargs,
) -> ChaosVerdict:
    """Run ``mine(db, flock)`` under ``schedule`` and classify it.

    ``expected_tuples`` is the fault-free baseline's ``relation.tuples``.
    The retry policy is seeded from the schedule so the whole run —
    faults *and* backoff jitter — replays from one integer.
    """
    from ..flocks.mining import mine

    mine_kwargs.setdefault("retry", RetryPolicy(seed=schedule.seed))
    with schedule.apply():
        try:
            relation, report = mine(db, flock, **mine_kwargs)
        except ReproError as error:
            return ChaosVerdict(
                kind="clean-abort",
                schedule=schedule,
                detail=f"{type(error).__name__}: {error}".split("\n")[0],
            )
    if relation.tuples == expected_tuples:
        detail = ", ".join(
            f"{d.kind}:{d.from_name}->{d.to_name}" for d in report.downgrades
        )
        return ChaosVerdict("identical", schedule, detail)
    return ChaosVerdict(
        kind="silent-partial",
        schedule=schedule,
        detail=(
            f"expected {len(expected_tuples)} tuples, "
            f"got {len(relation.tuples)}"
        ),
    )


__all__ = [
    "ChaosVerdict",
    "FaultSchedule",
    "SITE_MENUS",
    "SiteFault",
    "chaos_schedule",
    "run_under_chaos",
]
