"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness the robustness suite uses to exercise degradation paths that
would otherwise only fire under real resource pressure.
"""

from .faults import (
    FaultSpec,
    Hang,
    WorkerKill,
    active_faults,
    inject,
    maybe_hang,
    reset_faults,
    trip,
)

__all__ = [
    "FaultSpec",
    "Hang",
    "WorkerKill",
    "active_faults",
    "inject",
    "maybe_hang",
    "reset_faults",
    "trip",
]
