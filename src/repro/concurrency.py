"""Runtime markers for the concurrency conventions conlint checks.

The static analyzer in :mod:`repro.analysis.conlint` proves lock
discipline, wire safety, async-blocking freedom, and cancellation
responsiveness over ``src/repro``.  Its model is driven by a handful of
*source conventions*; this module is the runtime half of those
conventions, so annotated code stays importable and the decorators keep
doing something sensible when executed:

``GUARDED`` (class attribute, not defined here)
    ``GUARDED = {"_entries": "_lock"}`` on a class declares that the
    instance attribute ``_entries`` must only be read or written while
    ``self._lock`` is held.  conlint proves every lexical access.

:func:`locked`
    Method decorator that acquires ``self.<lock>`` around the call.
    conlint treats the whole body as holding that lock.

:func:`requires`
    Pure marker: the *caller* must already hold the named locks.  The
    body is checked as if the locks were held, and every call site is
    checked to actually hold them.  No runtime acquisition happens —
    that is the point (these are helpers invoked under a held lock).

:func:`blocking`
    Pure marker: this callable performs synchronous I/O (sqlite, file,
    socket, sleep) and therefore must never be invoked from an
    ``async def`` body except through an executor
    (``asyncio.to_thread`` / ``run_in_executor``).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


def locked(lock_attr: str) -> Callable[[F], F]:
    """Run the decorated method with ``getattr(self, lock_attr)`` held."""

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            with getattr(self, lock_attr):
                return func(self, *args, **kwargs)

        wrapper.__conlint_locked__ = (lock_attr,)  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


def requires(*lock_attrs: str) -> Callable[[F], F]:
    """Declare that callers must hold ``self.<lock>`` for each name.

    Runtime no-op (beyond tagging the function); conlint enforces the
    contract at every call site.
    """

    def decorate(func: F) -> F:
        func.__conlint_requires__ = tuple(lock_attrs)  # type: ignore[attr-defined]
        return func

    return decorate


def blocking(func: F) -> F:
    """Mark a callable as performing synchronous blocking I/O.

    Runtime no-op; conlint forbids direct calls from ``async def``
    bodies outside executor dispatch.
    """
    func.__conlint_blocking__ = True  # type: ignore[attr-defined]
    return func


__all__ = ["blocking", "locked", "requires"]
